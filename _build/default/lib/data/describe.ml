module Vec = Pnc_util.Vec

type stats = {
  name : string;
  n_samples : int;
  length : int;
  n_classes : int;
  class_counts : int array;
  value_min : float;
  value_max : float;
  mean_abs : float;
  between_class_distance : float;
  within_class_distance : float;
}

let euclid a b = Vec.norm2 (Vec.sub a b)

let class_means (d : Dataset.t) =
  let len = Dataset.length d in
  let sums = Array.init d.n_classes (fun _ -> Array.make len 0.) in
  let counts = Array.make d.n_classes 0 in
  Array.iteri
    (fun i series ->
      let c = d.y.(i) in
      counts.(c) <- counts.(c) + 1;
      Array.iteri (fun j v -> sums.(c).(j) <- sums.(c).(j) +. v) series)
    d.x;
  Array.mapi (fun c s -> Vec.scale (1. /. float_of_int (Stdlib.max 1 counts.(c))) s) sums

let stats (d : Dataset.t) =
  let means = class_means d in
  let between =
    let acc = ref 0. and n = ref 0 in
    for a = 0 to d.n_classes - 1 do
      for b = a + 1 to d.n_classes - 1 do
        acc := !acc +. euclid means.(a) means.(b);
        incr n
      done
    done;
    if !n = 0 then 0. else !acc /. float_of_int !n
  in
  let within =
    let acc = ref 0. in
    Array.iteri (fun i series -> acc := !acc +. euclid series means.(d.y.(i))) d.x;
    !acc /. float_of_int (Dataset.n_samples d)
  in
  let vmin = ref infinity and vmax = ref neg_infinity and sum_abs = ref 0. and count = ref 0 in
  Array.iter
    (fun series ->
      Array.iter
        (fun v ->
          vmin := Float.min !vmin v;
          vmax := Float.max !vmax v;
          sum_abs := !sum_abs +. Float.abs v;
          incr count)
        series)
    d.x;
  {
    name = d.name;
    n_samples = Dataset.n_samples d;
    length = Dataset.length d;
    n_classes = d.n_classes;
    class_counts = Dataset.class_counts d;
    value_min = !vmin;
    value_max = !vmax;
    mean_abs = !sum_abs /. float_of_int (Stdlib.max 1 !count);
    between_class_distance = between;
    within_class_distance = within;
  }

let separability s =
  if s.within_class_distance <= 1e-12 then infinity
  else s.between_class_distance /. s.within_class_distance

let nn_accuracy ?(seed = 0) d =
  let { Dataset.train; test; _ } = Dataset.preprocess (Pnc_util.Rng.create ~seed) d in
  let predict s =
    let best = ref 0 and best_d = ref infinity in
    Array.iteri
      (fun i tr ->
        let dd = euclid s tr in
        if dd < !best_d then begin
          best_d := dd;
          best := train.Dataset.y.(i)
        end)
      train.Dataset.x;
    !best
  in
  Pnc_util.Stats.accuracy ~pred:(Array.map predict test.Dataset.x) ~truth:test.Dataset.y

let report ?seed d =
  let s = stats d in
  let counts =
    String.concat ", " (Array.to_list (Array.map string_of_int s.class_counts))
  in
  String.concat "\n"
    [
      Printf.sprintf "%s: %d samples x %d steps, %d classes [%s]" s.name s.n_samples s.length
        s.n_classes counts;
      Printf.sprintf "values in [%.3f, %.3f], mean |x| = %.3f" s.value_min s.value_max s.mean_abs;
      Printf.sprintf "prototype separation %.3f / class spread %.3f (separability %.2f)"
        s.between_class_distance s.within_class_distance (separability s);
      Printf.sprintf "1-NN reference accuracy: %.3f" (nn_accuracy ?seed d);
    ]
