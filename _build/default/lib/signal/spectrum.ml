module Vec = Pnc_util.Vec

let hann n =
  assert (n >= 1);
  if n = 1 then [| 1. |]
  else
    Array.init n (fun i ->
        0.5 *. (1. -. cos (2. *. Float.pi *. float_of_int i /. float_of_int (n - 1))))

let one_sided ~fs x =
  let n = Array.length x in
  assert (n >= 2);
  let spec = Fft.fft_real x in
  let n_bins = (n / 2) + 1 in
  Array.init n_bins (fun k ->
      let p = Complex.norm2 spec.(k) /. float_of_int (n * n) in
      (* double everything except DC and (for even n) Nyquist *)
      let p = if k = 0 || ((n mod 2 = 0) && k = n / 2) then p else 2. *. p in
      (float_of_int k *. fs /. float_of_int n, p))

let remove_mean x = Vec.offset (-.Vec.mean x) x

let periodogram ~fs x = one_sided ~fs (remove_mean x)

let welch ~fs ~segment ?(overlap = 0.5) x =
  let n = Array.length x in
  assert (segment >= 2 && segment <= n);
  assert (overlap >= 0. && overlap < 1.);
  let step = Stdlib.max 1 (int_of_float (float_of_int segment *. (1. -. overlap))) in
  let window = hann segment in
  (* Window power normalization so a white signal keeps its variance. *)
  let wp = Vec.dot window window /. float_of_int segment in
  let acc = ref None and count = ref 0 in
  let pos = ref 0 in
  while !pos + segment <= n do
    let seg = remove_mean (Array.sub x !pos segment) in
    let windowed = Vec.mul seg window in
    let p = one_sided ~fs windowed in
    let scaled = Array.map (fun (f, v) -> (f, v /. wp)) p in
    (match !acc with
    | None -> acc := Some (Array.map snd scaled)
    | Some a -> Array.iteri (fun i (_, v) -> a.(i) <- a.(i) +. v) scaled);
    incr count;
    pos := !pos + step
  done;
  match !acc with
  | None -> invalid_arg "welch: signal shorter than one segment"
  | Some a ->
      let k = 1. /. float_of_int !count in
      Array.mapi
        (fun i v -> (float_of_int i *. fs /. float_of_int segment, v *. k))
        a

let band_power psd ~lo_hz ~hi_hz =
  Array.fold_left (fun acc (f, p) -> if f >= lo_hz && f < hi_hz then acc +. p else acc) 0. psd

let total_power psd = Array.fold_left (fun acc (_, p) -> acc +. p) 0. psd

let centroid_hz psd =
  let tp = total_power psd in
  if tp <= 0. then 0.
  else Array.fold_left (fun acc (f, p) -> acc +. (f *. p)) 0. psd /. tp

let rolloff_hz ?(fraction = 0.95) psd =
  assert (fraction > 0. && fraction <= 1.);
  let target = fraction *. total_power psd in
  let acc = ref 0. and result = ref None in
  Array.iter
    (fun (f, p) ->
      acc := !acc +. p;
      if !result = None && !acc >= target then result := Some f)
    psd;
  match !result with Some f -> f | None -> (match psd with [||] -> 0. | _ -> fst psd.(Array.length psd - 1))
