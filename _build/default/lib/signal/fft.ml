let is_pow2 n = n > 0 && n land (n - 1) = 0

let twiddle ~sign n k =
  let angle = sign *. 2. *. Float.pi *. float_of_int k /. float_of_int n in
  { Complex.re = cos angle; im = sin angle }

let dft_with ~sign x =
  let n = Array.length x in
  Array.init n (fun k ->
      let acc = ref Complex.zero in
      for j = 0 to n - 1 do
        acc := Complex.add !acc (Complex.mul x.(j) (twiddle ~sign n (k * j mod n)))
      done;
      !acc)

let dft_naive x = dft_with ~sign:(-1.) x

(* Iterative radix-2 with bit-reversal permutation. *)
let fft_pow2 ~sign x =
  let n = Array.length x in
  let a = Array.copy x in
  (* bit reversal *)
  let j = ref 0 in
  for i = 0 to n - 2 do
    if i < !j then begin
      let t = a.(i) in
      a.(i) <- a.(!j);
      a.(!j) <- t
    end;
    let m = ref (n lsr 1) in
    while !m >= 1 && !j land !m <> 0 do
      j := !j lxor !m;
      m := !m lsr 1
    done;
    j := !j lor !m
  done;
  let len = ref 2 in
  while !len <= n do
    let half = !len / 2 in
    let step = twiddle ~sign !len 1 in
    let i = ref 0 in
    while !i < n do
      let w = ref Complex.one in
      for k = 0 to half - 1 do
        let u = a.(!i + k) in
        let v = Complex.mul a.(!i + k + half) !w in
        a.(!i + k) <- Complex.add u v;
        a.(!i + k + half) <- Complex.sub u v;
        w := Complex.mul !w step
      done;
      i := !i + !len
    done;
    len := !len * 2
  done;
  a

let transform ~sign x =
  let n = Array.length x in
  if n = 0 then [||] else if is_pow2 n then fft_pow2 ~sign x else dft_with ~sign x

let fft x = transform ~sign:(-1.) x

let ifft x =
  let n = Array.length x in
  if n = 0 then [||]
  else
    let inv = 1. /. float_of_int n in
    Array.map (fun c -> { Complex.re = c.Complex.re *. inv; im = c.Complex.im *. inv })
      (transform ~sign:1. x)

let fft_real x = fft (Array.map (fun re -> { Complex.re; im = 0. }) x)
let ifft_real spec = Array.map (fun c -> c.Complex.re) (ifft spec)
let magnitude x = Array.map Complex.norm x
let power x = Array.map (fun c -> Complex.norm2 c) x
