type first_order = { r : float; c : float }
type second_order = { stage1 : first_order; stage2 : first_order }

let time_constant { r; c } = r *. c
let cutoff_hz fo = 1. /. (2. *. Float.pi *. time_constant fo)

let magnitude_1st fo hz =
  let w = 2. *. Float.pi *. hz in
  1. /. sqrt (1. +. ((w *. time_constant fo) ** 2.))

let magnitude_2nd { stage1; stage2 } hz = magnitude_1st stage1 hz *. magnitude_1st stage2 hz

let cutoff_2nd_hz so =
  (* |H| is monotone decreasing in frequency; bisect for 1/sqrt 2. *)
  let target = 1. /. sqrt 2. in
  let lo = ref 1e-6 and hi = ref 1e12 in
  for _ = 1 to 200 do
    let mid = sqrt (!lo *. !hi) in
    if magnitude_2nd so mid > target then lo := mid else hi := mid
  done;
  sqrt (!lo *. !hi)

type coeffs = { a : float; b : float }

let discrete_coeffs ?(mu = 1.) ~dt { r; c } =
  assert (r > 0. && c > 0. && dt > 0. && mu > 0.);
  let rc = r *. c in
  let denom = (mu *. rc) +. dt in
  { a = rc /. denom; b = dt /. denom }

let is_stable { a; _ } = Float.abs a < 1.
let dc_gain { a; b } = b /. (1. -. a)

let apply { a; b } ?(v0 = 0.) input =
  let state = ref v0 in
  Array.map
    (fun x ->
      state := (a *. !state) +. (b *. x);
      !state)
    input

let step_response co n = apply co (Array.make n 1.)

let impulse_response co n =
  apply co (Array.init n (fun i -> if i = 0 then 1. else 0.))

let apply_second_order ~c1 ~c2 ?(v0 = (0., 0.)) input =
  let v01, v02 = v0 in
  apply c2 ~v0:v02 (apply c1 ~v0:v01 input)

let settling_steps co ~eps =
  assert (is_stable co);
  let final = dc_gain co in
  let state = ref 0. and k = ref 0 in
  while Float.abs (!state -. final) > eps && !k < 1_000_000 do
    state := (co.a *. !state) +. co.b;
    incr k
  done;
  !k
