(** Analog RC low-pass filter theory and the paper's discrete-time
    models (Eq. 3–5 and the coupled Eq. 10–11).

    The continuous models describe the printed RC stages of the
    temporal processing block; the discrete models are the exact update
    rules unrolled through the autodiff engine during training. This
    module is the single source of truth for the coefficient formulas
    so that the circuit simulator, the trainable layers and the tests
    all agree. *)

type first_order = { r : float; c : float }
(** A printed resistor–capacitor stage: resistance in ohms,
    capacitance in farads. *)

type second_order = { stage1 : first_order; stage2 : first_order }
(** Two stages connected back-to-back (Fig. 4). *)

(** {1 Continuous-time characteristics} *)

val time_constant : first_order -> float
(** τ = RC. *)

val cutoff_hz : first_order -> float
(** −3 dB cutoff of an ideal (unloaded) stage: 1 / (2π RC). *)

val magnitude_1st : first_order -> float -> float
(** [magnitude_1st f hz] = |H(j2π hz)| = 1/√(1 + (ωRC)²). *)

val magnitude_2nd : second_order -> float -> float
(** Cascade magnitude of two ideal stages (no loading). *)

val cutoff_2nd_hz : second_order -> float
(** −3 dB frequency of the ideal cascade, found by bisection. *)

(** {1 Discrete-time model (paper Eq. 3 and Eq. 10–11)} *)

type coeffs = { a : float; b : float }
(** One step of [v_out(k) = a * v_out(k-1) + b * v_in(k)]. *)

val discrete_coeffs : ?mu:float -> dt:float -> first_order -> coeffs
(** [a = RC / (µ RC + Δt)], [b = Δt / (µ RC + Δt)]. [mu] defaults to 1
    (the uncoupled Eq. 3); the coupled model of Eq. 10–11 uses
    µ ∈ [1, 1.3] extracted from circuit simulation. *)

val is_stable : coeffs -> bool
(** |a| < 1: the recurrence does not diverge. *)

val dc_gain : coeffs -> float
(** Steady-state gain [b / (1 - a)]; 1 for µ = 1, below 1 when the
    coupling µ > 1 shunts current into the load. *)

val step_response : coeffs -> int -> float array
(** Response to a unit step from zero initial state. *)

val impulse_response : coeffs -> int -> float array

val apply : coeffs -> ?v0:float -> float array -> float array
(** Run the recurrence over an input series from initial state [v0]
    (default 0). *)

val apply_second_order : c1:coeffs -> c2:coeffs -> ?v0:float * float -> float array -> float array
(** Cascade of two discrete stages, as unrolled inside SO-LF layers. *)

val settling_steps : coeffs -> eps:float -> int
(** Number of steps for the step response to come within [eps] of its
    final value. *)
