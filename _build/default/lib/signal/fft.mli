(** Discrete Fourier transforms.

    Power-of-two lengths use an iterative radix-2 Cooley–Tukey FFT;
    other lengths fall back to the direct O(n²) DFT (series here are at
    most a few hundred samples, so the fallback is cheap). Forward
    transform uses the e^{-i 2π k n / N} convention; [ifft] divides by
    N so [ifft (fft x) = x]. Used by the frequency-domain augmentation
    (Fig. 6) and by spectrum diagnostics of the learned filters. *)

val fft : Complex.t array -> Complex.t array
val ifft : Complex.t array -> Complex.t array

val fft_real : float array -> Complex.t array
(** Forward transform of a real signal. *)

val ifft_real : Complex.t array -> float array
(** Inverse transform, discarding the (numerically tiny) imaginary
    parts — valid when the spectrum is conjugate-symmetric. *)

val magnitude : Complex.t array -> float array
val power : Complex.t array -> float array

val is_pow2 : int -> bool

val dft_naive : Complex.t array -> Complex.t array
(** Direct O(n²) DFT; exposed for testing the fast path against it. *)
