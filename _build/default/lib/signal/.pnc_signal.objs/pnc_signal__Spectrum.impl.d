lib/signal/spectrum.ml: Array Complex Fft Float Pnc_util Stdlib
