lib/signal/filter.ml: Array Float
