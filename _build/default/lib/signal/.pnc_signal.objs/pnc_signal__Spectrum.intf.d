lib/signal/spectrum.mli:
