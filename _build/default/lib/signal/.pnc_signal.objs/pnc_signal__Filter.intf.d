lib/signal/filter.mli:
