(** Power-spectrum estimation and spectral summary features.

    Used to characterize sensor signals and to sanity-check what the
    learned low-pass filters should keep: if a dataset's class signal
    lives below 10 Hz, the trained cutoffs should end up in that
    region. *)

val periodogram : fs:float -> float array -> (float * float) array
(** [(frequency_hz, power)] pairs for the one-sided spectrum of the
    (mean-removed) signal; power normalized so the sum approximates the
    signal variance. *)

val welch : fs:float -> segment:int -> ?overlap:float -> float array -> (float * float) array
(** Welch's method: averaged Hann-windowed periodograms of segments of
    the given length with fractional [overlap] (default 0.5). Lower
    variance than {!periodogram} at reduced resolution. *)

val band_power : (float * float) array -> lo_hz:float -> hi_hz:float -> float
(** Total power in [lo_hz, hi_hz). *)

val centroid_hz : (float * float) array -> float
(** Power-weighted mean frequency. *)

val rolloff_hz : ?fraction:float -> (float * float) array -> float
(** Frequency below which [fraction] (default 0.95) of the power lies. *)

val hann : int -> float array
