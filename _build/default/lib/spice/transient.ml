type integrator = Backward_euler | Trapezoidal
type result = { times : float array; samples : float array array }

(* Per-capacitor companion state. *)
type cap_state = { mutable v : float; mutable i : float }

let run ?(integrator = Backward_euler) circ ~dt ~steps ~probes =
  assert (dt > 0. && steps > 0);
  let elements = Circuit.elements circ in
  let caps =
    List.filter_map
      (function Circuit.Capacitor { ic; _ } -> Some { v = ic; i = 0. } | _ -> None)
      elements
  in
  let caps = Array.of_list caps in
  let times = Array.init steps (fun k -> float_of_int (k + 1) *. dt) in
  let samples = Array.make_matrix (List.length probes) steps 0. in
  let prev = ref None in
  Array.iteri
    (fun k t ->
      let vs_value ~ordinal:_ (e : Circuit.element) =
        match e with
        | Circuit.Vsource { dc; waveform; _ } -> (
            match waveform with Some f -> f t | None -> dc)
        | _ -> 0.
      in
      let is_value (e : Circuit.element) =
        match e with
        | Circuit.Isource { dc; waveform; _ } -> (
            match waveform with Some f -> f t | None -> dc)
        | _ -> 0.
      in
      (* The first step always uses backward Euler: a source discontinuity
         at t=0 would otherwise feed a wrong initial capacitor current
         into the trapezoidal companion and ring. *)
      let integrator = if k = 0 then Backward_euler else integrator in
      let cap b ~ordinal ~n1 ~n2 ~c ~ic:_ =
        let st = caps.(ordinal) in
        match integrator with
        | Backward_euler ->
            let geq = c /. dt in
            Stamp.conductance b n1 n2 geq;
            Stamp.inject b n1 (geq *. st.v);
            Stamp.inject b n2 (-.(geq *. st.v))
        | Trapezoidal ->
            let geq = 2. *. c /. dt in
            let ieq = (geq *. st.v) +. st.i in
            Stamp.conductance b n1 n2 geq;
            Stamp.inject b n1 ieq;
            Stamp.inject b n2 (-.ieq)
      in
      let x = Solver.solve ?init:!prev ~is_value circ ~vs_value ~cap in
      prev := Some x;
      (* Update companion states from the solved node voltages. *)
      let volt n = Stamp.voltage_of ~solution:x n in
      let cap_ord = ref 0 in
      List.iter
        (fun (e : Circuit.element) ->
          match e with
          | Circuit.Capacitor { n1; n2; c; _ } ->
              let st = caps.(!cap_ord) in
              incr cap_ord;
              let v_new = volt (n1 :> int) -. volt (n2 :> int) in
              (match integrator with
              | Backward_euler -> st.i <- c /. dt *. (v_new -. st.v)
              | Trapezoidal -> st.i <- (2. *. c /. dt *. (v_new -. st.v)) -. st.i);
              st.v <- v_new
          | _ -> ())
        elements;
      List.iteri (fun p n -> samples.(p).(k) <- volt (n : Circuit.node :> int)) probes)
    times;
  { times; samples }
