(** DC operating-point analysis and DC transfer sweeps.

    Capacitors are open circuits (bridged by a tiny [gmin] conductance
    for numerical robustness); nonlinear elements are solved by
    Newton iteration. The DC sweep regenerates the ptanh transfer
    characteristic of the printed activation circuit. *)

type solution

val solve : ?gmin:float -> Circuit.t -> solution
(** Default [gmin = 1e-12] S across capacitors. *)

val voltage : solution -> Circuit.node -> float
val vsource_current : solution -> ordinal:int -> float
(** Branch current of the [ordinal]-th voltage source (netlist order);
    positive current flows through the source from + to −. *)

val sweep :
  ?gmin:float -> Circuit.t -> source:string -> values:float array -> probe:Circuit.node -> float array
(** DC transfer curve: for each value of the named voltage source,
    re-solve and read the probe voltage. *)

val power : solution -> Circuit.t -> float
(** Total power dissipated in resistors and EGTs at the operating
    point (watts). *)
