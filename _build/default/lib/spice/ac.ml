open Complex

let c_re x = { re = x; im = 0. }

(* Complex stamping mirrors Stamp but over Complex.t. *)
type cstamp = { nn : int; matrix : Complex.t array array; rhs : Complex.t array }

let cstamp_create ~n_nodes ~n_vsources =
  let nn = n_nodes - 1 in
  let size = nn + n_vsources in
  { nn; matrix = Array.make_matrix size size zero; rhs = Array.make size zero }

let idx n = n - 1
let cadd b r c v = if r >= 0 && c >= 0 then b.matrix.(r).(c) <- add b.matrix.(r).(c) v

let cconductance b n1 n2 y =
  let i = idx n1 and j = idx n2 in
  cadd b i i y;
  cadd b j j y;
  cadd b i j (neg y);
  cadd b j i (neg y)

let cvccs b ~out_p ~out_n ~in_p ~in_n ~gm =
  let op = idx out_p and on = idx out_n and ip = idx in_p and in_ = idx in_n in
  cadd b op ip gm;
  cadd b op in_ (neg gm);
  cadd b on ip (neg gm);
  cadd b on in_ gm

let cvsource b ~ordinal ~np ~nn ~v =
  let row = b.nn + ordinal in
  let p = idx np and n = idx nn in
  if p >= 0 then begin
    b.matrix.(p).(row) <- add b.matrix.(p).(row) one;
    b.matrix.(row).(p) <- add b.matrix.(row).(p) one
  end;
  if n >= 0 then begin
    b.matrix.(n).(row) <- sub b.matrix.(n).(row) one;
    b.matrix.(row).(n) <- sub b.matrix.(row).(n) one
  end;
  b.rhs.(row) <- v

(* Small-signal EGT parameters at the DC operating point. *)
let egt_small_signal dc_sol (e : Circuit.element) =
  match e with
  | Circuit.Egt { drain; gate; source; params; _ } ->
      let volt n = Dc.voltage dc_sol n in
      let vgs = volt gate -. volt source and vds = volt drain -. volt source in
      let sech2 x =
        let c = cosh x in
        1. /. (c *. c)
      in
      let gm = params.i0 *. sech2 ((vgs -. params.vth) /. params.vss) /. params.vss *. tanh (vds /. params.vds0) in
      let gds =
        params.i0 *. (1. +. tanh ((vgs -. params.vth) /. params.vss)) *. sech2 (vds /. params.vds0) /. params.vds0
      in
      (gm, gds)
  | _ -> (0., 0.)

let response circ ~probe:(probe : Circuit.node) ~freqs_hz =
  let n_nodes = Circuit.n_nodes circ in
  let n_vs = Circuit.n_vsources circ in
  let dc_sol = if Circuit.has_nonlinear circ then Some (Dc.solve circ) else None in
  Array.map
    (fun f ->
      let w = 2. *. Float.pi *. f in
      let b = cstamp_create ~n_nodes ~n_vsources:n_vs in
      let vs_ord = ref 0 in
      List.iter
        (fun (e : Circuit.element) ->
          match e with
          | Circuit.Resistor { n1; n2; r; _ } -> cconductance b (n1 :> int) (n2 :> int) (c_re (1. /. r))
          | Circuit.Capacitor { n1; n2; c; _ } ->
              cconductance b (n1 :> int) (n2 :> int) { re = 0.; im = w *. c }
          | Circuit.Vsource { np; nn; ac; _ } ->
              let ord = !vs_ord in
              incr vs_ord;
              cvsource b ~ordinal:ord ~np:(np :> int) ~nn:(nn :> int) ~v:(c_re ac)
          | Circuit.Isource _ -> () (* open for small-signal *)
          | Circuit.Vccs { out_p; out_n; in_p; in_n; gm; _ } ->
              cvccs b ~out_p:(out_p :> int) ~out_n:(out_n :> int) ~in_p:(in_p :> int)
                ~in_n:(in_n :> int) ~gm:(c_re gm)
          | Circuit.Diode_like { np; nn; g_of_v; _ } ->
              let v0 =
                match dc_sol with
                | Some s -> Dc.voltage s np -. Dc.voltage s nn
                | None -> 0.
              in
              cconductance b (np :> int) (nn :> int) (c_re (Float.max 1e-12 (g_of_v v0)))
          | Circuit.Egt { drain; gate; source; _ } ->
              let gm, gds =
                match dc_sol with Some s -> egt_small_signal s e | None -> (0., 1e-12)
              in
              let d = (drain :> int) and g = (gate :> int) and s = (source :> int) in
              cvccs b ~out_p:d ~out_n:s ~in_p:g ~in_n:s ~gm:(c_re gm);
              cconductance b d s (c_re (Float.max 1e-12 gds)))
        (Circuit.elements circ);
      let x = Mna.solve_complex b.matrix b.rhs in
      let p = (probe :> int) in
      if p = 0 then zero else x.(p - 1))
    freqs_hz

let magnitude circ ~probe ~freqs_hz =
  Array.map Complex.norm (response circ ~probe ~freqs_hz)

let cutoff_hz ?(f_lo = 1e-3) ?(f_hi = 1e9) circ ~probe =
  let mag f = (magnitude circ ~probe ~freqs_hz:[| f |]).(0) in
  let ref_mag = mag f_lo in
  let target = ref_mag /. Stdlib.sqrt 2. in
  let lo = ref f_lo and hi = ref f_hi in
  for _ = 1 to 100 do
    let mid = Stdlib.sqrt (!lo *. !hi) in
    if mag mid > target then lo := mid else hi := mid
  done;
  Stdlib.sqrt (!lo *. !hi)
