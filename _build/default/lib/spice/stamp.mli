(** Low-level MNA stamping shared by the DC, AC and transient analyses.

    Unknowns are ordered as [v_1 .. v_{N-1}] (node voltages, ground
    excluded) followed by one branch current per independent voltage
    source. The builder hides the ground-row elimination: stamping into
    node 0 is silently dropped. *)

type t

val create : n_nodes:int -> n_vsources:int -> t
(** [n_nodes] includes ground. *)

val size : t -> int

val conductance : t -> int -> int -> float -> unit
(** [conductance b n1 n2 g] stamps a conductance between two nodes. *)

val inject : t -> int -> float -> unit
(** Current injection into a node (rhs). *)

val transconductance : t -> out_p:int -> out_n:int -> in_p:int -> in_n:int -> gm:float -> unit

val add_matrix : t -> row_node:int -> col_node:int -> float -> unit
(** Raw nodal matrix entry (for transistor linearizations). *)

val vsource : t -> ordinal:int -> np:int -> nn:int -> v:float -> unit
(** Stamp independent voltage source number [ordinal] (0-based, in
    netlist order). *)

val system : t -> float array array * float array
(** The assembled (matrix, rhs); returned by reference, valid until the
    builder is reused. *)

val voltage_of : solution:float array -> int -> float
(** Node voltage from a solution vector (node 0 reads 0). *)

val vsource_current : t -> solution:float array -> ordinal:int -> float
