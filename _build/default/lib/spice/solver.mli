(** Shared Newton–Raphson MNA solve used by the DC and transient
    analyses. Linear circuits converge in one iteration; nonlinear
    elements (behavioural diodes and EGTs) are relinearized around the
    previous iterate until the update norm falls below [tol]. *)

val solve :
  ?max_iter:int ->
  ?tol:float ->
  ?init:float array ->
  ?is_value:(Circuit.element -> float) ->
  Circuit.t ->
  vs_value:(ordinal:int -> Circuit.element -> float) ->
  cap:(Stamp.t -> ordinal:int -> n1:int -> n2:int -> c:float -> ic:float -> unit) ->
  float array
(** Returns the full solution vector (node voltages then voltage-source
    branch currents). [vs_value] chooses the instantaneous value of
    each voltage source; [cap] stamps each capacitor (open + gmin for
    DC, a companion model for transient steps).

    @raise Mna.Singular on an ill-posed netlist.
    @raise Failure if Newton fails to converge within [max_iter]. *)

val egt_ids : Circuit.egt_params -> vgs:float -> vds:float -> float
(** The behavioural EGT drain current (exposed for tests and for the
    power model). *)
