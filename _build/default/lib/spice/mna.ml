exception Singular

let solve_real a b =
  let n = Array.length b in
  assert (Array.length a = n);
  let m = Array.map Array.copy a in
  let x = Array.copy b in
  for col = 0 to n - 1 do
    (* partial pivot *)
    let piv = ref col in
    for r = col + 1 to n - 1 do
      if Float.abs m.(r).(col) > Float.abs m.(!piv).(col) then piv := r
    done;
    if Float.abs m.(!piv).(col) < 1e-14 then raise Singular;
    if !piv <> col then begin
      let tmp = m.(col) in
      m.(col) <- m.(!piv);
      m.(!piv) <- tmp;
      let tb = x.(col) in
      x.(col) <- x.(!piv);
      x.(!piv) <- tb
    end;
    let d = m.(col).(col) in
    for r = col + 1 to n - 1 do
      let f = m.(r).(col) /. d in
      if f <> 0. then begin
        for c = col to n - 1 do
          m.(r).(c) <- m.(r).(c) -. (f *. m.(col).(c))
        done;
        x.(r) <- x.(r) -. (f *. x.(col))
      end
    done
  done;
  for r = n - 1 downto 0 do
    let acc = ref x.(r) in
    for c = r + 1 to n - 1 do
      acc := !acc -. (m.(r).(c) *. x.(c))
    done;
    x.(r) <- !acc /. m.(r).(r)
  done;
  x

let solve_complex a b =
  let open Complex in
  let n = Array.length b in
  assert (Array.length a = n);
  let m = Array.map Array.copy a in
  let x = Array.copy b in
  for col = 0 to n - 1 do
    let piv = ref col in
    for r = col + 1 to n - 1 do
      if norm m.(r).(col) > norm m.(!piv).(col) then piv := r
    done;
    if norm m.(!piv).(col) < 1e-14 then raise Singular;
    if !piv <> col then begin
      let tmp = m.(col) in
      m.(col) <- m.(!piv);
      m.(!piv) <- tmp;
      let tb = x.(col) in
      x.(col) <- x.(!piv);
      x.(!piv) <- tb
    end;
    let d = m.(col).(col) in
    for r = col + 1 to n - 1 do
      let f = div m.(r).(col) d in
      if norm f <> 0. then begin
        for c = col to n - 1 do
          m.(r).(c) <- sub m.(r).(c) (mul f m.(col).(c))
        done;
        x.(r) <- sub x.(r) (mul f x.(col))
      end
    done
  done;
  for r = n - 1 downto 0 do
    let acc = ref x.(r) in
    for c = r + 1 to n - 1 do
      acc := sub !acc (mul m.(r).(c) x.(c))
    done;
    x.(r) <- div !acc m.(r).(r)
  done;
  x

let mat_vec a v =
  Array.map
    (fun row ->
      let acc = ref 0. in
      Array.iteri (fun i x -> acc := !acc +. (x *. v.(i))) row;
      !acc)
    a
