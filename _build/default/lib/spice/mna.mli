(** Dense linear solvers for modified nodal analysis systems.

    Systems are small (tens of unknowns), so Gaussian elimination with
    partial pivoting is both adequate and easy to trust. *)

exception Singular
(** Raised when the matrix is (numerically) singular — typically a
    floating node or a loop of ideal voltage sources in the netlist. *)

val solve_real : float array array -> float array -> float array
(** [solve_real a b] destroys neither input; returns x with a x = b. *)

val solve_complex : Complex.t array array -> Complex.t array -> Complex.t array

val mat_vec : float array array -> float array -> float array
(** Matrix–vector product (used for residual checks in tests). *)
