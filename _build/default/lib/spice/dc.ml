type solution = { circ : Circuit.t; x : float array }

let cap_open ~gmin b ~ordinal:_ ~n1 ~n2 ~c:_ ~ic:_ = Stamp.conductance b n1 n2 gmin

let vs_dc ~ordinal:_ (e : Circuit.element) =
  match e with Circuit.Vsource { dc; _ } -> dc | _ -> 0.

let solve ?(gmin = 1e-12) circ =
  let x = Solver.solve circ ~vs_value:vs_dc ~cap:(cap_open ~gmin) in
  { circ; x }

let voltage { x; _ } (n : Circuit.node) = Stamp.voltage_of ~solution:x (n :> int)

let vsource_current { circ; x } ~ordinal = x.(Circuit.n_nodes circ - 1 + ordinal)

let sweep ?(gmin = 1e-12) circ ~source ~values ~probe:(probe : Circuit.node) =
  let prev = ref None in
  Array.map
    (fun v ->
      let vs_value ~ordinal:_ (e : Circuit.element) =
        match e with
        | Circuit.Vsource { name; dc; _ } -> if name = source then v else dc
        | _ -> 0.
      in
      let x = Solver.solve ?init:!prev circ ~vs_value ~cap:(cap_open ~gmin) in
      prev := Some x;
      Stamp.voltage_of ~solution:x (probe :> int))
    values

let power sol circ =
  let volt n = voltage sol n in
  List.fold_left
    (fun acc (e : Circuit.element) ->
      match e with
      | Circuit.Resistor { n1; n2; r; _ } ->
          let dv = volt n1 -. volt n2 in
          acc +. (dv *. dv /. r)
      | Circuit.Egt { drain; gate; source; params; _ } ->
          let vgs = volt gate -. volt source and vds = volt drain -. volt source in
          acc +. Float.abs (Solver.egt_ids params ~vgs ~vds *. vds)
      | Circuit.Capacitor _ | Circuit.Vsource _ | Circuit.Isource _ | Circuit.Vccs _
      | Circuit.Diode_like _ ->
          acc)
    0. (Circuit.elements circ)
