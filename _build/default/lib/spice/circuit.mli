(** Netlist construction for the SPICE-lite simulator.

    This replaces the paper's Cadence Virtuoso + printed PDK flow for
    the circuit-level questions the paper asks of it: filter magnitude
    and impulse responses, cutoff frequencies, the ptanh transfer
    curve, and the coupling factor µ of the crossbar-loaded filters.

    Nodes are created by name; node 0 is ground. Elements reference
    nodes by the handle returned from {!node}. *)

type t
type node = private int

val create : unit -> t
val ground : node
val node : t -> string -> node
(** Get-or-create a named node. *)

val n_nodes : t -> int
(** Including ground. *)

val node_name : t -> node -> string

(** {1 Elements}

    Each constructor appends an element and returns unit. Values are in
    SI units (ohm, farad, volt, ampere, siemens). *)

val resistor : t -> ?name:string -> node -> node -> float -> unit
val capacitor : t -> ?name:string -> ?ic:float -> node -> node -> float -> unit
(** [ic] is the initial voltage across the capacitor for transient
    analysis (default 0). *)

val vsource :
  t -> ?name:string -> ?ac:float -> ?waveform:(float -> float) -> node -> node -> float -> unit
(** [vsource t np nn dc]: independent voltage source from [np] (+) to
    [nn] (−). [ac] is the small-signal amplitude for {!Ac} analysis;
    [waveform] overrides the value during transient analysis (a
    function of time in seconds). *)

val isource : t -> ?name:string -> ?waveform:(float -> float) -> node -> node -> float -> unit
(** Current flows from the first node through the source to the
    second. *)

val vccs :
  t -> ?name:string -> out_p:node -> out_n:node -> in_p:node -> in_n:node -> gm:float -> unit -> unit
(** Linear voltage-controlled current source (transconductance). *)

val diode_like :
  t -> ?name:string -> node -> node -> i_of_v:(float -> float) -> g_of_v:(float -> float) -> unit
(** Behavioural two-terminal nonlinear element; [i_of_v] gives the
    current entering the first node as a function of the voltage across
    the element, [g_of_v] its derivative (used by the Newton solver). *)

type egt_params = { i0 : float; vth : float; vss : float; vds0 : float }
(** Behavioural n-type electrolyte-gated transistor (n-EGT):
    Ids = i0 · (1 + tanh((Vgs − vth)/vss)) · tanh(Vds/vds0).
    Smooth in both terminal voltages so Newton converges; calibrated to
    give the ptanh transfer shape of the printed activation circuit. *)

val default_egt : egt_params

val egt : t -> ?name:string -> ?params:egt_params -> drain:node -> gate:node -> source:node -> unit -> unit

(** {1 Introspection (used by analyses and tests)} *)

type element =
  | Resistor of { name : string; n1 : node; n2 : node; r : float }
  | Capacitor of { name : string; n1 : node; n2 : node; c : float; ic : float }
  | Vsource of {
      name : string;
      np : node;
      nn : node;
      dc : float;
      ac : float;
      waveform : (float -> float) option;
    }
  | Isource of { name : string; np : node; nn : node; dc : float; waveform : (float -> float) option }
  | Vccs of { name : string; out_p : node; out_n : node; in_p : node; in_n : node; gm : float }
  | Diode_like of { name : string; np : node; nn : node; i_of_v : float -> float; g_of_v : float -> float }
  | Egt of { name : string; drain : node; gate : node; source : node; params : egt_params }

val elements : t -> element list
(** In insertion order. *)

val n_vsources : t -> int

val device_counts : t -> int * int * int
(** (transistors, resistors, capacitors) in the netlist. *)

val has_nonlinear : t -> bool
