(** Waveform post-processing: the measurements the paper reads off its
    SPICE runs. *)

val cutoff_from_response : freqs_hz:float array -> mags:float array -> float
(** −3 dB frequency relative to the first (lowest-frequency) magnitude,
    linearly interpolated between samples. Requires a decreasing
    response that actually crosses the −3 dB level. *)

val rise_time : times:float array -> samples:float array -> float
(** 10 %–90 % rise time of a step response. *)

val fit_first_order : input:float array -> output:float array -> float * float
(** Least-squares fit of [(a, b)] in [y(k) = a·y(k-1) + b·u(k)] over a
    sampled waveform (k ≥ 1). This is how the coupling factor µ is
    recovered from a transient run of the loaded filter stage. *)

val mu_from_coeff : a:float -> r:float -> c:float -> dt:float -> float
(** Invert [a = RC / (µRC + Δt)] for µ. *)

val goodness_of_fit : input:float array -> output:float array -> a:float -> b:float -> float
(** RMS residual of the fitted recurrence (diagnostics). *)
