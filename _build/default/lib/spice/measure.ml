let cutoff_from_response ~freqs_hz ~mags =
  let n = Array.length freqs_hz in
  assert (n = Array.length mags && n >= 2);
  let target = mags.(0) /. sqrt 2. in
  let rec find i =
    if i >= n then invalid_arg "cutoff_from_response: no -3 dB crossing in range"
    else if mags.(i) <= target then begin
      let f0 = freqs_hz.(i - 1) and f1 = freqs_hz.(i) in
      let m0 = mags.(i - 1) and m1 = mags.(i) in
      let t = (m0 -. target) /. (m0 -. m1) in
      f0 +. (t *. (f1 -. f0))
    end
    else find (i + 1)
  in
  find 1

let crossing ~times ~samples level =
  let n = Array.length samples in
  let rec find i =
    if i >= n then invalid_arg "rise_time: level not reached"
    else if samples.(i) >= level then
      if i = 0 then times.(0)
      else begin
        let t = (level -. samples.(i - 1)) /. (samples.(i) -. samples.(i - 1)) in
        times.(i - 1) +. (t *. (times.(i) -. times.(i - 1)))
      end
    else find (i + 1)
  in
  find 0

let rise_time ~times ~samples =
  assert (Array.length times = Array.length samples);
  let final = samples.(Array.length samples - 1) in
  let t10 = crossing ~times ~samples (0.1 *. final) in
  let t90 = crossing ~times ~samples (0.9 *. final) in
  t90 -. t10

let fit_first_order ~input ~output =
  let n = Array.length output in
  assert (n = Array.length input && n >= 3);
  (* Normal equations for y_k = a y_{k-1} + b u_k. *)
  let s_yy = ref 0. and s_uu = ref 0. and s_yu = ref 0. in
  let s_ty = ref 0. and s_tu = ref 0. in
  for k = 1 to n - 1 do
    let yp = output.(k - 1) and u = input.(k) and y = output.(k) in
    s_yy := !s_yy +. (yp *. yp);
    s_uu := !s_uu +. (u *. u);
    s_yu := !s_yu +. (yp *. u);
    s_ty := !s_ty +. (y *. yp);
    s_tu := !s_tu +. (y *. u)
  done;
  let det = (!s_yy *. !s_uu) -. (!s_yu *. !s_yu) in
  if Float.abs det < 1e-18 then invalid_arg "fit_first_order: degenerate waveform";
  let a = ((!s_ty *. !s_uu) -. (!s_tu *. !s_yu)) /. det in
  let b = ((!s_tu *. !s_yy) -. (!s_ty *. !s_yu)) /. det in
  (a, b)

let mu_from_coeff ~a ~r ~c ~dt =
  assert (a > 0.);
  let rc = r *. c in
  (rc -. (a *. dt)) /. (a *. rc)

let goodness_of_fit ~input ~output ~a ~b =
  let n = Array.length output in
  let acc = ref 0. in
  for k = 1 to n - 1 do
    let pred = (a *. output.(k - 1)) +. (b *. input.(k)) in
    acc := !acc +. ((output.(k) -. pred) ** 2.)
  done;
  sqrt (!acc /. float_of_int (n - 1))
