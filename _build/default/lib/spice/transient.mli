(** Transient analysis with backward-Euler or trapezoidal companion
    models for capacitors.

    This regenerates the time-domain behaviour of the printed filter
    stages (Fig. 4, left panels) and drives the extraction of the
    coupling factor µ: a crossbar-loaded RC stage is simulated and the
    discrete update coefficients are fitted from the waveform. *)

type integrator = Backward_euler | Trapezoidal

type result = {
  times : float array;  (** t = dt, 2·dt, …, steps·dt *)
  samples : float array array;  (** [samples.(p).(k)] = probe p at times.(k) *)
}

val run :
  ?integrator:integrator ->
  Circuit.t ->
  dt:float ->
  steps:int ->
  probes:Circuit.node list ->
  result
(** Capacitor initial voltages come from their [ic]; voltage sources
    follow their [waveform] when given, else hold their DC value.
    Nonlinear circuits are re-solved by Newton at every step, warm
    started from the previous step. *)
