let fmt_si v =
  let mag = Float.abs v in
  let scaled, suffix =
    if mag = 0. then (0., "")
    else if mag >= 1e9 then (v /. 1e9, "G")
    else if mag >= 1e6 then (v /. 1e6, "Meg")
    else if mag >= 1e3 then (v /. 1e3, "k")
    else if mag >= 1. then (v, "")
    else if mag >= 1e-3 then (v *. 1e3, "m")
    else if mag >= 1e-6 then (v *. 1e6, "u")
    else if mag >= 1e-9 then (v *. 1e9, "n")
    else (v *. 1e12, "p")
  in
  (* Trim trailing zeros of the mantissa. *)
  let s = Printf.sprintf "%.4g" scaled in
  s ^ suffix

let node_str circ n = if (n : Circuit.node :> int) = 0 then "0" else Circuit.node_name circ n

let card circ (e : Circuit.element) =
  let n = node_str circ in
  match e with
  | Circuit.Resistor { name; n1; n2; r } ->
      Printf.sprintf "%s %s %s %s" name (n n1) (n n2) (fmt_si r)
  | Circuit.Capacitor { name; n1; n2; c; ic } ->
      if ic = 0. then Printf.sprintf "%s %s %s %s" name (n n1) (n n2) (fmt_si c)
      else Printf.sprintf "%s %s %s %s IC=%s" name (n n1) (n n2) (fmt_si c) (fmt_si ic)
  | Circuit.Vsource { name; np; nn; dc; ac; waveform } ->
      let ac_part = if ac <> 0. then Printf.sprintf " AC %s" (fmt_si ac) else "" in
      let tran_part = match waveform with Some _ -> " TRAN <waveform>" | None -> "" in
      Printf.sprintf "%s %s %s DC %s%s%s" name (n np) (n nn) (fmt_si dc) ac_part tran_part
  | Circuit.Isource { name; np; nn; dc; waveform } ->
      let tran_part = match waveform with Some _ -> " TRAN <waveform>" | None -> "" in
      Printf.sprintf "%s %s %s DC %s%s" name (n np) (n nn) (fmt_si dc) tran_part
  | Circuit.Vccs { name; out_p; out_n; in_p; in_n; gm } ->
      Printf.sprintf "%s %s %s %s %s %s" name (n out_p) (n out_n) (n in_p) (n in_n) (fmt_si gm)
  | Circuit.Diode_like { name; np; nn; _ } ->
      Printf.sprintf "* %s %s %s behavioural(i_of_v)" name (n np) (n nn)
  | Circuit.Egt { name; drain; gate; source; params } ->
      Printf.sprintf "* %s %s %s %s n-EGT i0=%s vth=%s vss=%s vds0=%s" name (n drain) (n gate)
        (n source) (fmt_si params.Circuit.i0) (fmt_si params.Circuit.vth)
        (fmt_si params.Circuit.vss) (fmt_si params.Circuit.vds0)

let to_string ?(title = "pnc_spice netlist") circ =
  let buf = Buffer.create 512 in
  Buffer.add_string buf ("* " ^ title ^ "\n");
  List.iter
    (fun e ->
      Buffer.add_string buf (card circ e);
      Buffer.add_char buf '\n')
    (Circuit.elements circ);
  Buffer.add_string buf ".end\n";
  Buffer.contents buf

let component_summary circ =
  let r = ref 0 and c = ref 0 and v = ref 0 and i = ref 0 and g = ref 0 and t = ref 0 and d = ref 0 in
  List.iter
    (fun (e : Circuit.element) ->
      match e with
      | Circuit.Resistor _ -> incr r
      | Circuit.Capacitor _ -> incr c
      | Circuit.Vsource _ -> incr v
      | Circuit.Isource _ -> incr i
      | Circuit.Vccs _ -> incr g
      | Circuit.Egt _ -> incr t
      | Circuit.Diode_like _ -> incr d)
    (Circuit.elements circ);
  let parts =
    List.filter_map
      (fun (count, label) -> if count > 0 then Some (Printf.sprintf "%d %s" count label) else None)
      [ (!r, "R"); (!c, "C"); (!v, "V"); (!i, "I"); (!g, "VCCS"); (!t, "EGT"); (!d, "D") ]
  in
  String.concat ", " parts
