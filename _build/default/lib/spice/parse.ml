let suffixes =
  [ ("Meg", 1e6); ("MEG", 1e6); ("meg", 1e6); ("G", 1e9); ("g", 1e9); ("k", 1e3); ("K", 1e3);
    ("m", 1e-3); ("u", 1e-6); ("U", 1e-6); ("n", 1e-9); ("N", 1e-9); ("p", 1e-12); ("P", 1e-12) ]

let value s =
  let s = String.trim s in
  let try_suffix (suf, mult) =
    if String.length s > String.length suf && Filename.check_suffix s suf then
      let body = String.sub s 0 (String.length s - String.length suf) in
      Option.map (fun v -> v *. mult) (float_of_string_opt body)
    else None
  in
  (* Longest suffixes first so "Meg" is not read as trailing "g". *)
  match List.find_map try_suffix suffixes with
  | Some v -> v
  | None -> (
      match float_of_string_opt s with
      | Some v -> v
      | None -> failwith (Printf.sprintf "not a SPICE value: %S" s))

let tokens line =
  String.split_on_char ' ' line |> List.map String.trim |> List.filter (fun t -> t <> "")

let deck contents =
  let circ = Circuit.create () in
  let node name = if name = "0" || name = "gnd" then Circuit.ground else Circuit.node circ name in
  let parse_line lineno line =
    let fail fmt = Printf.ksprintf (fun m -> failwith (Printf.sprintf "line %d: %s" lineno m)) fmt in
    if line = "" || line.[0] = '*' then ()
    else if line.[0] = '.' then () (* .end and other directives *)
    else
      match tokens line with
      | name :: rest -> (
          let kind = Char.uppercase_ascii name.[0] in
          match (kind, rest) with
          | 'R', [ n1; n2; v ] -> Circuit.resistor circ ~name (node n1) (node n2) (value v)
          | 'C', [ n1; n2; v ] -> Circuit.capacitor circ ~name (node n1) (node n2) (value v)
          | 'C', [ n1; n2; v; ic ] when String.length ic > 3 && String.sub ic 0 3 = "IC=" ->
              Circuit.capacitor circ ~name
                ~ic:(value (String.sub ic 3 (String.length ic - 3)))
                (node n1) (node n2) (value v)
          | 'V', n1 :: n2 :: spec -> (
              match spec with
              | [ "DC"; v ] -> Circuit.vsource circ ~name (node n1) (node n2) (value v)
              | [ "DC"; v; "AC"; a ] ->
                  Circuit.vsource circ ~name ~ac:(value a) (node n1) (node n2) (value v)
              | [ v ] -> Circuit.vsource circ ~name (node n1) (node n2) (value v)
              | _ -> fail "unsupported voltage source card")
          | 'I', n1 :: n2 :: spec -> (
              match spec with
              | [ "DC"; v ] | [ v ] -> Circuit.isource circ ~name (node n1) (node n2) (value v)
              | _ -> fail "unsupported current source card")
          | 'G', [ op; on; ip; inn; gm ] ->
              Circuit.vccs circ ~name ~out_p:(node op) ~out_n:(node on) ~in_p:(node ip)
                ~in_n:(node inn) ~gm:(value gm) ()
          | _ -> fail "unrecognized card: %S" line)
      | [] -> ()
  in
  List.iteri
    (fun i line -> parse_line (i + 1) (String.trim line))
    (String.split_on_char '\n' contents);
  circ

let element_signature (circ : Circuit.t) (e : Circuit.element) =
  (* Compare by node name (ids may be assigned in a different order) and
     at the precision Deck emits (4 significant digits). *)
  let n x = if (x : Circuit.node :> int) = 0 then "0" else Circuit.node_name circ x in
  let v = Printf.sprintf "%.3g" in
  match e with
  | Circuit.Resistor { n1; n2; r; _ } -> Printf.sprintf "R %s %s %s" (n n1) (n n2) (v r)
  | Circuit.Capacitor { n1; n2; c; ic; _ } ->
      Printf.sprintf "C %s %s %s %s" (n n1) (n n2) (v c) (v ic)
  | Circuit.Vsource { np; nn; dc; ac; _ } ->
      Printf.sprintf "V %s %s %s %s" (n np) (n nn) (v dc) (v ac)
  | Circuit.Isource { np; nn; dc; _ } -> Printf.sprintf "I %s %s %s" (n np) (n nn) (v dc)
  | Circuit.Vccs { out_p; out_n; in_p; in_n; gm; _ } ->
      Printf.sprintf "G %s %s %s %s %s" (n out_p) (n out_n) (n in_p) (n in_n) (v gm)
  | Circuit.Diode_like _ -> "D"
  | Circuit.Egt _ -> "T"

let roundtrip_equal circ =
  let parsed = deck (Deck.to_string circ) in
  let sig_of c =
    List.filter_map
      (fun e ->
        match e with
        | Circuit.Diode_like _ | Circuit.Egt _ -> None (* emitted as comments *)
        | _ -> Some (element_signature c e))
      (Circuit.elements c)
  in
  sig_of circ = sig_of parsed
