type t = {
  nn : int; (* number of non-ground nodes *)
  n_vs : int;
  matrix : float array array;
  rhs : float array;
}

let create ~n_nodes ~n_vsources =
  let nn = n_nodes - 1 in
  let size = nn + n_vsources in
  {
    nn;
    n_vs = n_vsources;
    matrix = Array.make_matrix size size 0.;
    rhs = Array.make size 0.;
  }

let size t = t.nn + t.n_vs

(* node -> matrix row/col, or -1 for ground *)
let idx n = n - 1

let add t r c v = if r >= 0 && c >= 0 then t.matrix.(r).(c) <- t.matrix.(r).(c) +. v

let conductance t n1 n2 g =
  let i = idx n1 and j = idx n2 in
  add t i i g;
  add t j j g;
  add t i j (-.g);
  add t j i (-.g)

let inject t n v = if n > 0 then t.rhs.(idx n) <- t.rhs.(idx n) +. v

let transconductance t ~out_p ~out_n ~in_p ~in_n ~gm =
  let op = idx out_p and on = idx out_n and ip = idx in_p and in_ = idx in_n in
  add t op ip gm;
  add t op in_ (-.gm);
  add t on ip (-.gm);
  add t on in_ gm

let add_matrix t ~row_node ~col_node v = add t (idx row_node) (idx col_node) v

let vsource t ~ordinal ~np ~nn ~v =
  let row = t.nn + ordinal in
  let p = idx np and n = idx nn in
  if p >= 0 then begin
    t.matrix.(p).(row) <- t.matrix.(p).(row) +. 1.;
    t.matrix.(row).(p) <- t.matrix.(row).(p) +. 1.
  end;
  if n >= 0 then begin
    t.matrix.(n).(row) <- t.matrix.(n).(row) -. 1.;
    t.matrix.(row).(n) <- t.matrix.(row).(n) -. 1.
  end;
  t.rhs.(row) <- v

let system t = (t.matrix, t.rhs)
let voltage_of ~solution n = if n = 0 then 0. else solution.(n - 1)
let vsource_current t ~solution ~ordinal = solution.(t.nn + ordinal)
