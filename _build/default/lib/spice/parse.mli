(** Parsing of simple SPICE decks back into netlists — the inverse of
    {!Deck} for the linear element subset (R, C, V with DC/AC, I,
    VCCS). Comment lines ([*]) and [.end]/[.END] cards are skipped;
    values accept standard SPICE suffixes (G, Meg, k, m, u, n, p).

    Behavioural elements (EGTs, diode-like two-poles) have no portable
    card and are not parseable; {!Deck} emits them as comments. *)

val value : string -> float
(** Parse one SPICE value: ["4.7k"] → 4700., ["100n"] → 1e-7.
    @raise Failure on malformed input. *)

val deck : string -> Circuit.t
(** Parse a whole deck.
    @raise Failure with a line-numbered message on malformed cards. *)

val roundtrip_equal : Circuit.t -> bool
(** [deck (Deck.to_string c)] has the same element cards as [c] —
    used by the property tests. Only meaningful for linear circuits. *)
