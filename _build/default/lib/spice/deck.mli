(** Textual SPICE deck rendering of a netlist.

    Produces a conventional `.cir`-style listing (one card per element,
    `.end` terminated) so circuits built programmatically — including
    crossbars exported from trained networks — can be inspected, put in
    version control, or fed to an external simulator. Behavioural
    elements that have no standard card (EGTs, diode-like two-poles)
    are emitted as commented behavioural cards with their parameters. *)

val to_string : ?title:string -> Circuit.t -> string

val component_summary : Circuit.t -> string
(** One-line inventory: "3 R, 2 C, 1 V, 2 EGT". *)

val fmt_si : float -> string
(** Engineering notation with SPICE suffixes: 4700. -> "4.7k",
    1e-7 -> "100n". *)
