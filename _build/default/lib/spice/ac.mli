(** Small-signal AC analysis.

    Builds the complex MNA system at each frequency: resistors stamp
    their conductance, capacitors their admittance jωC, and voltage
    sources their [ac] amplitude. Nonlinear elements are linearized
    around the DC operating point first (classic small-signal flow).
    Used to obtain the printed filters' magnitude responses and −3 dB
    cutoffs (Fig. 4's frequency-domain panels). *)

val response : Circuit.t -> probe:Circuit.node -> freqs_hz:float array -> Complex.t array
(** Complex probe voltage at each frequency (per unit of AC source
    amplitude if a single source has [ac = 1]). *)

val magnitude : Circuit.t -> probe:Circuit.node -> freqs_hz:float array -> float array

val cutoff_hz : ?f_lo:float -> ?f_hi:float -> Circuit.t -> probe:Circuit.node -> float
(** −3 dB point relative to the response at [f_lo], found by bisection
    in log-frequency. Defaults: [f_lo = 1e-3] Hz, [f_hi = 1e9] Hz.
    Requires a monotonically decreasing (low-pass) response. *)
