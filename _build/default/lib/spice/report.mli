(** Operating-point reports: the "what is every element doing" table an
    analog designer reads before trusting a circuit. *)

type element_op = {
  name : string;
  kind : string;  (** "R", "C", "V", "I", "VCCS", "EGT", "D" *)
  voltage : float;  (** across the element (V), + to − / first to second node *)
  current : float;  (** through it (A), flowing first node → second node *)
  power : float;  (** dissipated (W); negative for sources delivering power *)
}

val operating_point : Circuit.t -> element_op list
(** Solves DC and tabulates every element. *)

val total_dissipation : element_op list -> float
(** Sum of positive powers — matches {!Dc.power} for R/EGT circuits. *)

val to_string : element_op list -> string
(** Aligned text table with SI-formatted values. *)
