lib/spice/ac.ml: Array Circuit Complex Dc Float List Mna Stdlib
