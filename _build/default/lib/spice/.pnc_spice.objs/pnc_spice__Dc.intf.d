lib/spice/dc.mli: Circuit
