lib/spice/circuit.ml: Hashtbl List Printf
