lib/spice/measure.ml: Array Float
