lib/spice/report.ml: Circuit Dc Deck List Pnc_util Solver
