lib/spice/stamp.ml: Array
