lib/spice/parse.mli: Circuit
