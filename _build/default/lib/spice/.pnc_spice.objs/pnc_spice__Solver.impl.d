lib/spice/solver.ml: Array Circuit Float List Mna Stamp
