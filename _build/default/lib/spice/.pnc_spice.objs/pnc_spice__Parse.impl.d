lib/spice/parse.ml: Char Circuit Deck Filename List Option Printf String
