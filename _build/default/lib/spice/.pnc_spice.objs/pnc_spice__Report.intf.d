lib/spice/report.mli: Circuit
