lib/spice/measure.mli:
