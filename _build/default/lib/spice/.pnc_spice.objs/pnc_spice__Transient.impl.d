lib/spice/transient.ml: Array Circuit List Solver Stamp
