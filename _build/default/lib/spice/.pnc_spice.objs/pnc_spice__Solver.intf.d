lib/spice/solver.mli: Circuit Stamp
