lib/spice/dc.ml: Array Circuit Float List Solver Stamp
