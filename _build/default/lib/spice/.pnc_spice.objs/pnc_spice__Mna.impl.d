lib/spice/mna.ml: Array Complex Float
