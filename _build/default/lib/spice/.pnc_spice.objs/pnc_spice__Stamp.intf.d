lib/spice/stamp.mli:
