lib/spice/deck.ml: Buffer Circuit Float List Printf String
