lib/spice/ac.mli: Circuit Complex
