lib/spice/mna.mli: Complex
