lib/spice/circuit.mli:
