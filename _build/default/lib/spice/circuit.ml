type node = int

type egt_params = { i0 : float; vth : float; vss : float; vds0 : float }

type element =
  | Resistor of { name : string; n1 : node; n2 : node; r : float }
  | Capacitor of { name : string; n1 : node; n2 : node; c : float; ic : float }
  | Vsource of {
      name : string;
      np : node;
      nn : node;
      dc : float;
      ac : float;
      waveform : (float -> float) option;
    }
  | Isource of { name : string; np : node; nn : node; dc : float; waveform : (float -> float) option }
  | Vccs of { name : string; out_p : node; out_n : node; in_p : node; in_n : node; gm : float }
  | Diode_like of { name : string; np : node; nn : node; i_of_v : float -> float; g_of_v : float -> float }
  | Egt of { name : string; drain : node; gate : node; source : node; params : egt_params }

type t = {
  names : (string, node) Hashtbl.t;
  mutable next_node : int;
  mutable elems : element list; (* reversed *)
  mutable n_elems : int;
}

let create () =
  let names = Hashtbl.create 16 in
  Hashtbl.add names "0" 0;
  Hashtbl.add names "gnd" 0;
  { names; next_node = 1; elems = []; n_elems = 0 }

let ground = 0

let node t name =
  match Hashtbl.find_opt t.names name with
  | Some n -> n
  | None ->
      let n = t.next_node in
      t.next_node <- n + 1;
      Hashtbl.add t.names name n;
      n

let n_nodes t = t.next_node

let node_name t n =
  let found = ref None in
  Hashtbl.iter (fun k v -> if v = n && k <> "gnd" && !found = None then found := Some k) t.names;
  match !found with Some s -> s | None -> Printf.sprintf "n%d" n

let push t e =
  t.elems <- e :: t.elems;
  t.n_elems <- t.n_elems + 1

let auto t prefix = Printf.sprintf "%s%d" prefix t.n_elems

let resistor t ?name n1 n2 r =
  assert (r > 0.);
  let name = match name with Some n -> n | None -> auto t "R" in
  push t (Resistor { name; n1; n2; r })

let capacitor t ?name ?(ic = 0.) n1 n2 c =
  assert (c > 0.);
  let name = match name with Some n -> n | None -> auto t "C" in
  push t (Capacitor { name; n1; n2; c; ic })

let vsource t ?name ?(ac = 0.) ?waveform np nn dc =
  let name = match name with Some n -> n | None -> auto t "V" in
  push t (Vsource { name; np; nn; dc; ac; waveform })

let isource t ?name ?waveform np nn dc =
  let name = match name with Some n -> n | None -> auto t "I" in
  push t (Isource { name; np; nn; dc; waveform })

let vccs t ?name ~out_p ~out_n ~in_p ~in_n ~gm () =
  let name = match name with Some n -> n | None -> auto t "G" in
  push t (Vccs { name; out_p; out_n; in_p; in_n; gm })

let diode_like t ?name np nn ~i_of_v ~g_of_v =
  let name = match name with Some n -> n | None -> auto t "D" in
  push t (Diode_like { name; np; nn; i_of_v; g_of_v })

let default_egt = { i0 = 1e-5; vth = 0.3; vss = 0.25; vds0 = 0.4 }

let egt t ?name ?(params = default_egt) ~drain ~gate ~source () =
  let name = match name with Some n -> n | None -> auto t "T" in
  push t (Egt { name; drain; gate; source; params })

let elements t = List.rev t.elems

let n_vsources t =
  List.length (List.filter (function Vsource _ -> true | _ -> false) t.elems)

let device_counts t =
  List.fold_left
    (fun (tr, r, c) e ->
      match e with
      | Egt _ -> (tr + 1, r, c)
      | Resistor _ -> (tr, r + 1, c)
      | Capacitor _ -> (tr, r, c + 1)
      | Vsource _ | Isource _ | Vccs _ | Diode_like _ -> (tr, r, c))
    (0, 0, 0) t.elems

let has_nonlinear t =
  List.exists (function Diode_like _ | Egt _ -> true | _ -> false) t.elems
