type element_op = {
  name : string;
  kind : string;
  voltage : float;
  current : float;
  power : float;
}

let operating_point circ =
  let sol = Dc.solve circ in
  let volt n = Dc.voltage sol n in
  let vs_ord = ref (-1) in
  List.map
    (fun (e : Circuit.element) ->
      match e with
      | Circuit.Resistor { name; n1; n2; r } ->
          let v = volt n1 -. volt n2 in
          let i = v /. r in
          { name; kind = "R"; voltage = v; current = i; power = v *. i }
      | Circuit.Capacitor { name; n1; n2; _ } ->
          { name; kind = "C"; voltage = volt n1 -. volt n2; current = 0.; power = 0. }
      | Circuit.Vsource { name; np; nn; _ } ->
          incr vs_ord;
          let i = Dc.vsource_current sol ~ordinal:!vs_ord in
          let v = volt np -. volt nn in
          { name; kind = "V"; voltage = v; current = i; power = v *. i }
      | Circuit.Isource { name; np; nn; dc; _ } ->
          let v = volt np -. volt nn in
          { name; kind = "I"; voltage = v; current = dc; power = v *. dc }
      | Circuit.Vccs { name; out_p; out_n; in_p; in_n; gm } ->
          let i = gm *. (volt in_p -. volt in_n) in
          let v = volt out_p -. volt out_n in
          { name; kind = "VCCS"; voltage = v; current = i; power = v *. i }
      | Circuit.Diode_like { name; np; nn; i_of_v; _ } ->
          let v = volt np -. volt nn in
          let i = i_of_v v in
          { name; kind = "D"; voltage = v; current = i; power = v *. i }
      | Circuit.Egt { name; drain; gate; source; params } ->
          let vds = volt drain -. volt source and vgs = volt gate -. volt source in
          let i = Solver.egt_ids params ~vgs ~vds in
          { name; kind = "EGT"; voltage = vds; current = i; power = vds *. i })
    (Circuit.elements circ)

let total_dissipation ops =
  List.fold_left (fun acc op -> if op.power > 0. then acc +. op.power else acc) 0. ops

let to_string ops =
  let t =
    Pnc_util.Table.create ~header:[ "Element"; "Kind"; "V"; "I"; "P" ]
  in
  List.iter
    (fun op ->
      Pnc_util.Table.add_row t
        [
          op.name;
          op.kind;
          Deck.fmt_si op.voltage ^ "V";
          Deck.fmt_si op.current ^ "A";
          Deck.fmt_si op.power ^ "W";
        ])
    ops;
  Pnc_util.Table.render t
