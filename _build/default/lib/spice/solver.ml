let sech2 x =
  let c = cosh x in
  1. /. (c *. c)

let egt_ids (p : Circuit.egt_params) ~vgs ~vds =
  p.i0 *. (1. +. tanh ((vgs -. p.vth) /. p.vss)) *. tanh (vds /. p.vds0)

let egt_gm (p : Circuit.egt_params) ~vgs ~vds =
  p.i0 *. sech2 ((vgs -. p.vth) /. p.vss) /. p.vss *. tanh (vds /. p.vds0)

let egt_gds (p : Circuit.egt_params) ~vgs ~vds =
  p.i0 *. (1. +. tanh ((vgs -. p.vth) /. p.vss)) *. sech2 (vds /. p.vds0) /. p.vds0

let default_is_value ~time:_ (e : Circuit.element) =
  match e with Circuit.Isource { dc; _ } -> dc | _ -> 0.

let solve ?(max_iter = 200) ?(tol = 1e-9) ?init ?(is_value = default_is_value ~time:0.) circ
    ~vs_value ~cap =
  let n_nodes = Circuit.n_nodes circ in
  let n_vs = Circuit.n_vsources circ in
  let size = n_nodes - 1 + n_vs in
  let elements = Circuit.elements circ in
  let nonlinear = Circuit.has_nonlinear circ in
  let guess =
    match init with
    | Some g ->
        assert (Array.length g = size);
        Array.copy g
    | None -> Array.make size 0.
  in
  let volt n = Stamp.voltage_of ~solution:guess (n : Circuit.node :> int) in
  let assemble () =
    let b = Stamp.create ~n_nodes ~n_vsources:n_vs in
    let vs_ord = ref 0 in
    let cap_ord = ref 0 in
    List.iter
      (fun (e : Circuit.element) ->
        match e with
        | Circuit.Resistor { n1; n2; r; _ } ->
            Stamp.conductance b (n1 :> int) (n2 :> int) (1. /. r)
        | Circuit.Capacitor { n1; n2; c; ic; _ } ->
            let ord = !cap_ord in
            incr cap_ord;
            cap b ~ordinal:ord ~n1:(n1 :> int) ~n2:(n2 :> int) ~c ~ic
        | Circuit.Vsource { np; nn; _ } ->
            let ord = !vs_ord in
            incr vs_ord;
            Stamp.vsource b ~ordinal:ord ~np:(np :> int) ~nn:(nn :> int) ~v:(vs_value ~ordinal:ord e)
        | Circuit.Isource { np; nn; _ } ->
            let v = is_value e in
            Stamp.inject b (np :> int) (-.v);
            Stamp.inject b (nn :> int) v
        | Circuit.Vccs { out_p; out_n; in_p; in_n; gm; _ } ->
            Stamp.transconductance b ~out_p:(out_p :> int) ~out_n:(out_n :> int)
              ~in_p:(in_p :> int) ~in_n:(in_n :> int) ~gm
        | Circuit.Diode_like { np; nn; i_of_v; g_of_v; _ } ->
            let v0 = volt np -. volt nn in
            let i0 = i_of_v v0 and g = Float.max 1e-12 (g_of_v v0) in
            Stamp.conductance b (np :> int) (nn :> int) g;
            let ieq = i0 -. (g *. v0) in
            Stamp.inject b (np :> int) (-.ieq);
            Stamp.inject b (nn :> int) ieq
        | Circuit.Egt { drain; gate; source; params; _ } ->
            let vgs = volt gate -. volt source and vds = volt drain -. volt source in
            let ids = egt_ids params ~vgs ~vds in
            let gm = egt_gm params ~vgs ~vds and gds = Float.max 1e-12 (egt_gds params ~vgs ~vds) in
            let d = (drain :> int) and g = (gate :> int) and s = (source :> int) in
            (* Standard transistor stamp: Ids flows drain -> source. *)
            Stamp.add_matrix b ~row_node:d ~col_node:d gds;
            Stamp.add_matrix b ~row_node:d ~col_node:g gm;
            Stamp.add_matrix b ~row_node:d ~col_node:s (-.(gm +. gds));
            Stamp.add_matrix b ~row_node:s ~col_node:d (-.gds);
            Stamp.add_matrix b ~row_node:s ~col_node:g (-.gm);
            Stamp.add_matrix b ~row_node:s ~col_node:s (gm +. gds);
            let ieq = ids -. (gm *. vgs) -. (gds *. vds) in
            Stamp.inject b d (-.ieq);
            Stamp.inject b s ieq)
      elements;
    b
  in
  let iteration () =
    let b = assemble () in
    let matrix, rhs = Stamp.system b in
    Mna.solve_real matrix rhs
  in
  if not nonlinear then iteration ()
  else begin
    let converged = ref false and iter = ref 0 in
    while (not !converged) && !iter < max_iter do
      incr iter;
      let x = iteration () in
      let delta = ref 0. in
      for i = 0 to size - 1 do
        delta := Float.max !delta (Float.abs (x.(i) -. guess.(i)))
      done;
      (* Damped update keeps the exponential-free EGT model stable even
         from a cold start. *)
      let alpha = if !delta > 2. then 2. /. !delta else 1. in
      for i = 0 to size - 1 do
        guess.(i) <- guess.(i) +. (alpha *. (x.(i) -. guess.(i)))
      done;
      if !delta *. alpha < tol then converged := true
    done;
    if not !converged then failwith "Solver.solve: Newton did not converge";
    guess
  end
