(* Printed filter design walk-through (the circuit-level flow the paper
   runs in Cadence with the printed PDK, here on the built-in SPICE-lite
   engine):

   1. pick printable component values for a second-order RC stage,
   2. characterize it: AC magnitude response, -3 dB cutoff, step
      response, against the analytic filter model,
   3. quantify the coupling to the downstream crossbar and extract the
      effective mu of the discrete training model (Sec. III-2),
   4. sweep the printable space and report the mu range used as the
      sampling prior of variation-aware training.

   Run with: dune exec examples/filter_design.exe *)

module Circuit = Pnc_spice.Circuit
module Ac = Pnc_spice.Ac
module Transient = Pnc_spice.Transient
module Measure = Pnc_spice.Measure
module Filter = Pnc_signal.Filter
module Coupling = Pnc_core.Coupling
module Printed = Pnc_core.Printed
module Table = Pnc_util.Table

let r = 1000. (* ohm: the top of the printable filter-resistor window *)
let c = 1e-5 (* farad *)

let second_order_netlist ~load =
  let circ = Circuit.create () in
  let vin = Circuit.node circ "in" in
  let mid = Circuit.node circ "mid" and out = Circuit.node circ "out" in
  Circuit.vsource circ ~ac:1. ~waveform:(fun _ -> 1.) vin Circuit.ground 0.;
  Circuit.resistor circ vin mid r;
  Circuit.capacitor circ mid Circuit.ground c;
  Circuit.resistor circ mid out r;
  Circuit.capacitor circ out Circuit.ground c;
  (match load with Some rl -> Circuit.resistor circ out Circuit.ground rl | None -> ());
  (circ, out)

let () =
  Printf.printf "second-order printed low-pass: R = %.0f ohm, C = %.0f uF per stage\n\n" r
    (c *. 1e6);

  (* AC characterization. *)
  let circ, out = second_order_netlist ~load:None in
  let freqs = [| 1.; 5.; 10.; 20.; 50.; 100. |] in
  let mags = Ac.magnitude circ ~probe:out ~freqs_hz:freqs in
  let ideal =
    { Filter.stage1 = { Filter.r; c }; stage2 = { Filter.r; c } }
  in
  let t = Table.create ~header:[ "f (Hz)"; "|H| SPICE"; "|H| ideal cascade" ] in
  Array.iteri
    (fun i f ->
      Table.add_row t
        [
          Printf.sprintf "%.0f" f;
          Printf.sprintf "%.4f" mags.(i);
          Printf.sprintf "%.4f" (Filter.magnitude_2nd ideal f);
        ])
    freqs;
  Table.print t;
  Printf.printf "-3 dB cutoff: %.2f Hz simulated vs %.2f Hz ideal (loading lowers it)\n\n"
    (Ac.cutoff_hz circ ~probe:out)
    (Filter.cutoff_2nd_hz ideal);

  (* Step response. *)
  let circ, out = second_order_netlist ~load:None in
  let { Transient.times; samples } = Transient.run circ ~dt:2e-4 ~steps:500 ~probes:[ out ] in
  Printf.printf "step response: 10-90%% rise time %.1f ms (two cascaded tau = %.1f ms stages)\n\n"
    (1000. *. Measure.rise_time ~times ~samples:samples.(0))
    (1000. *. r *. c);

  (* Coupling to the crossbar load. *)
  print_endline "coupling factor mu of the discrete training model (Eq. 10-11):";
  List.iter
    (fun r_load ->
      let e = Coupling.extract ~r ~c ~r_load () in
      Printf.printf "  crossbar input resistance %6.0f ohm -> mu = %.3f (theory %.3f)\n" r_load
        e.Coupling.mu
        (Coupling.mu_theory ~c ~r_load))
    [ 6_800.; 33_000.; 330_000. ];
  print_newline ();

  (* Survey over the printable space: the sampling prior of training. *)
  let survey = Coupling.survey () in
  let lo, hi = Coupling.mu_range survey in
  Printf.printf
    "printable-space survey: mu in [%.3f, %.3f]; variation-aware training samples mu ~ U[%.1f, %.1f]\n"
    lo hi Printed.mu_min Printed.mu_max
