(* Quickstart: train a robustness-aware ADAPT-pNC on one benchmark and
   evaluate it the way the paper does — under ±10 % component variation
   and perturbed sensor inputs.

   Run with: dune exec examples/quickstart.exe *)

module Dataset = Pnc_data.Dataset
module Registry = Pnc_data.Registry
module Augment = Pnc_augment.Augment
module Network = Pnc_core.Network
module Model = Pnc_core.Model
module Train = Pnc_core.Train
module Variation = Pnc_core.Variation
module Hardware = Pnc_core.Hardware
module Rng = Pnc_util.Rng

let () =
  (* 1. Data: a synthetic stand-in for the UCR PowerCons benchmark,
     preprocessed exactly like the paper (length 64, [-1,1], 60/20/20). *)
  let raw = Registry.load ~seed:0 "PowerCons" in
  let split = Dataset.preprocess (Rng.create ~seed:1) raw in
  Printf.printf "dataset: %s (%d classes, %d train / %d valid / %d test)\n" raw.Dataset.name
    raw.Dataset.n_classes
    (Dataset.n_samples split.Dataset.train)
    (Dataset.n_samples split.Dataset.valid)
    (Dataset.n_samples split.Dataset.test);

  (* 2. Augmented training data (the AT ingredient). *)
  let arng = Rng.create ~seed:2 in
  let augment d = Augment.augment_dataset arng Augment.default_policy ~copies:1 d in
  let split =
    { split with Dataset.train = augment split.Dataset.train; valid = augment split.Dataset.valid }
  in

  (* 3. Model: a 2-layer ADAPT-pNC with second-order learnable filters. *)
  let rng = Rng.create ~seed:3 in
  let net = Network.create rng Network.Adapt ~inputs:1 ~classes:raw.Dataset.n_classes in
  let model = Model.Circuit net in
  Printf.printf "model: %s, %d trainable component values\n" (Model.label model)
    (Model.n_params model);

  (* 4. Variation-aware training (the VA ingredient): the Monte-Carlo
     objective of Eq. 13 with ±10 % component variation. *)
  let cfg = { Train.fast_config with Train.max_epochs = 150 } in
  let history = Train.train ~rng:(Rng.create ~seed:4) cfg model split in
  Printf.printf "trained for %d epochs (best validation loss %.4f)\n" history.Train.epochs_run
    history.Train.best_val_loss;

  (* 5. Evaluation: clean, then as a physical circuit with ±10 %
     component spread, then additionally with perturbed inputs. *)
  let erng = Rng.create ~seed:5 in
  let spec = Variation.uniform 0.1 in
  let test = split.Dataset.test in
  let perturbed = Augment.perturb_dataset (Rng.create ~seed:6) Augment.default_policy test in
  Printf.printf "accuracy, clean inputs, nominal components:   %.3f\n"
    (Train.accuracy model test);
  Printf.printf "accuracy, clean inputs, ±10%% components:      %.3f\n"
    (Train.accuracy_under_variation ~rng:erng ~spec ~draws:10 model test);
  Printf.printf "accuracy, perturbed inputs, ±10%% components:  %.3f\n"
    (Train.accuracy_under_variation ~rng:erng ~spec ~draws:10 model perturbed);

  (* 6. What would this cost to print? *)
  let counts = Hardware.of_network net in
  Printf.printf "hardware: %s, static power %.3f mW\n" (Hardware.describe counts)
    (Hardware.power_mw net)
