(* Manufacturing-yield analysis of a printed classifier.

   Printing is cheap per unit but wildly variable: the practical
   question for a disposable smart label is not one circuit's accuracy
   but what fraction of a printed batch meets the spec. This example
   trains the baseline pTPNC and the robustness-aware ADAPT-pNC on the
   same task, then "prints" many instances of each (Monte-Carlo
   component variation) and compares their yield curves. Finally it
   exports the winning design as a SPICE deck and cross-checks the
   netlist against the training model.

   Run with: dune exec examples/yield_analysis.exe *)

module Dataset = Pnc_data.Dataset
module Registry = Pnc_data.Registry
module Augment = Pnc_augment.Augment
module Network = Pnc_core.Network
module Model = Pnc_core.Model
module Train = Pnc_core.Train
module Variation = Pnc_core.Variation
module Yield = Pnc_core.Yield
module Netlist_export = Pnc_core.Netlist_export
module Crossbar = Pnc_core.Crossbar
module Rng = Pnc_util.Rng
module Table = Pnc_util.Table

let () =
  let raw = Registry.load ~seed:0 ~n:160 "GPMVF" in
  let split = Dataset.preprocess (Rng.create ~seed:1) raw in
  Printf.printf "task: %s, spec: accuracy >= 0.75 per printed instance\n\n" raw.Dataset.name;

  (* Train both designs. *)
  let train_model ~va net split =
    let cfg =
      if va then { Train.fast_config with Train.max_epochs = 200 }
      else
        { Train.fast_config with Train.max_epochs = 200; variation = Variation.none; mc_samples = 1 }
    in
    let model = Model.Circuit net in
    let _ = Train.train ~rng:(Rng.create ~seed:2) cfg model split in
    model
  in
  let base_net = Network.create (Rng.create ~seed:3) Network.Ptpnc ~inputs:1 ~classes:2 in
  let base = train_model ~va:false base_net split in
  let arng = Rng.create ~seed:4 in
  let aug d = Augment.augment_dataset arng Augment.default_policy ~copies:1 d in
  let split_at =
    { split with Dataset.train = aug split.Dataset.train; valid = aug split.Dataset.valid }
  in
  let adapt_net = Network.create (Rng.create ~seed:5) Network.Adapt ~inputs:1 ~classes:2 in
  let adapt = train_model ~va:true adapt_net split_at in

  (* Yield curves over increasing process variation. *)
  let levels = [ 0.05; 0.1; 0.2; 0.3 ] in
  let threshold = 0.75 and draws = 25 in
  let sweep model =
    Yield.sweep_levels ~rng:(Rng.create ~seed:6) ~levels ~threshold ~draws model
      split.Dataset.test
  in
  let base_rows = sweep base and adapt_rows = sweep adapt in
  let t = Table.create ~header:[ "Variation"; "pTPNC"; "ADAPT-pNC" ] in
  List.iter2
    (fun (level, (b : Yield.result)) (_, (a : Yield.result)) ->
      Table.add_row t
        [
          Printf.sprintf "±%.0f%%" (100. *. level);
          Printf.sprintf "acc %.3f, yield %3.0f%%" b.Yield.mean_acc (100. *. b.Yield.yield);
          Printf.sprintf "acc %.3f, yield %3.0f%%" a.Yield.mean_acc (100. *. a.Yield.yield);
        ])
    base_rows adapt_rows;
  Table.print t;
  Printf.printf "(%d instances per cell)\n\n" draws;

  (* Export the robust design and verify the physical netlist. *)
  (match Network.layers adapt_net with
  | (cb, _, _) :: _ ->
      let inputs = Array.make (Crossbar.inputs cb) 0.4 in
      Printf.printf "layer-1 crossbar exported to SPICE: DC solve %s the training model\n"
        (if Netlist_export.dc_check cb ~inputs ~max_abs_error:1e-9 then "matches" else "DIFFERS FROM")
  | [] -> ());
  let deck = Netlist_export.deck adapt_net in
  let first_lines =
    String.concat "\n"
      (List.filteri (fun i _ -> i < 12) (String.split_on_char '\n' deck))
  in
  Printf.printf "\nfirst cards of the exported deck:\n%s\n...\n" first_lines
