(* Smart food packaging: cold-chain breach classification — one of the
   paper's target applications (Fig. 1: smart fruit/food packaging,
   smart milk carton).

   A printed temperature logger inside a package sees a temperature
   series during transport. Three conditions must be told apart at
   end-of-transport from the temporal profile alone:

     0 - intact cold chain        (flat, cold, small fluctuations)
     1 - single brief breach      (one warm excursion, recovered)
     2 - repeated / long breaches (multiple or sustained excursions)

   A disposable printed classifier is the economic fit here: the
   circuit costs cents, is biodegradable, and the decision ("accept /
   inspect / reject") only needs three output voltages.

   Run with: dune exec examples/smart_packaging.exe *)

module Dataset = Pnc_data.Dataset
module Augment = Pnc_augment.Augment
module Network = Pnc_core.Network
module Model = Pnc_core.Model
module Train = Pnc_core.Train
module Variation = Pnc_core.Variation
module Hardware = Pnc_core.Hardware
module Rng = Pnc_util.Rng

let temperature_trace rng ~condition ~length =
  let base = 4. +. Rng.gaussian ~sigma:0.4 rng (* degrees C *) in
  let breaches =
    match condition with
    | 0 -> [||]
    | 1 ->
        [| (Rng.uniform rng ~lo:0.2 ~hi:0.7, Rng.uniform rng ~lo:6. ~hi:12., 0.06) |]
    | _ ->
        Array.init
          (2 + Rng.int rng 2)
          (fun _ ->
            ( Rng.uniform rng ~lo:0.1 ~hi:0.8,
              Rng.uniform rng ~lo:5. ~hi:10.,
              Rng.uniform rng ~lo:0.08 ~hi:0.18 ))
  in
  Array.init length (fun i ->
      let t = float_of_int i /. float_of_int length in
      let excursion =
        Array.fold_left
          (fun acc (onset, amp, width) ->
            acc +. (amp *. exp (-.(((t -. onset) /. width) ** 2.))))
          0. breaches
      in
      base +. excursion +. Rng.gaussian ~sigma:0.25 rng)

let make_dataset rng ~n ~length =
  let y = Array.init n (fun i -> i mod 3) in
  let x = Array.map (fun condition -> temperature_trace rng ~condition ~length) y in
  Dataset.make ~name:"cold-chain" ~n_classes:3 ~x ~y

let () =
  let raw = make_dataset (Rng.create ~seed:21) ~n:270 ~length:128 in
  let split = Dataset.preprocess (Rng.create ~seed:22) raw in
  Printf.printf "cold-chain monitoring: %d transports, 3 conditions\n" (Dataset.n_samples raw);

  (* Train the robustness-aware circuit: cheap printed hardware has to
     tolerate both printing spread and sensor noise, so VA + AT are on. *)
  let arng = Rng.create ~seed:23 in
  let augment d = Augment.augment_dataset arng Augment.default_policy ~copies:1 d in
  let train_split =
    { split with Dataset.train = augment split.Dataset.train; valid = augment split.Dataset.valid }
  in
  let net = Network.create (Rng.create ~seed:24) Network.Adapt ~inputs:1 ~classes:3 in
  let model = Model.Circuit net in
  let cfg = { Train.fast_config with Train.max_epochs = 160 } in
  let history = Train.train ~rng:(Rng.create ~seed:25) cfg model train_split in
  Printf.printf "trained %d epochs\n" history.Train.epochs_run;

  let erng = Rng.create ~seed:26 in
  let spec = Variation.uniform 0.1 in
  Printf.printf "accuracy (clean):                   %.3f\n" (Train.accuracy model split.Dataset.test);
  Printf.printf "accuracy (±10%% printed components): %.3f\n"
    (Train.accuracy_under_variation ~rng:erng ~spec ~draws:10 model split.Dataset.test);

  (* Confusion matrix on the test set: what failure mode remains? *)
  let x, y = Train.to_xy split.Dataset.test in
  let pred = Model.predict model x in
  let cm = Pnc_util.Stats.confusion ~n_classes:3 ~pred ~truth:y in
  print_endline "confusion (rows = truth: intact, brief, repeated):";
  Array.iter
    (fun row ->
      print_string "  ";
      Array.iter (fun v -> Printf.printf "%4d" v) row;
      print_newline ())
    cm;

  (* Bill of materials: is this printable for cents? *)
  let counts = Hardware.of_network net in
  Printf.printf "printed bill of materials: %s, %.3f mW static\n" (Hardware.describe counts)
    (Hardware.power_mw net)
