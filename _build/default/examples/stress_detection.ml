(* Stress detection from electrodermal activity (EDA) — the wearable
   application the paper's introduction motivates (smart band-aids,
   Sec. III cites the printed EDA stress sensor of Zhao et al.).

   We synthesize EDA traces: a slowly drifting tonic level plus phasic
   skin-conductance responses (SCRs). Stress shows up as more frequent
   and larger SCRs — the *temporal dynamics*, not the absolute level,
   carry the information, which is exactly why the temporal processing
   block with learnable filters exists.

   The example trains the baseline pTPNC and the robustness-aware
   ADAPT-pNC and compares them as physical circuits: under ±10 %
   printing variation and with sensor noise on the inputs.

   Run with: dune exec examples/stress_detection.exe *)

module Dataset = Pnc_data.Dataset
module Augment = Pnc_augment.Augment
module Network = Pnc_core.Network
module Model = Pnc_core.Model
module Train = Pnc_core.Train
module Variation = Pnc_core.Variation
module Rng = Pnc_util.Rng
module Vec = Pnc_util.Vec

(* One synthetic EDA trace. SCRs are asymmetric bumps: fast rise, slow
   exponential recovery — the canonical skin-conductance response
   shape. *)
let eda_trace rng ~stressed ~length =
  let tonic_start = Rng.uniform rng ~lo:2. ~hi:8. (* microsiemens *) in
  let tonic_drift = Rng.uniform rng ~lo:(-0.5) ~hi:1.0 in
  let n_scr =
    if stressed then 3 + Rng.int rng 4 (* 3-6 responses *)
    else Rng.int rng 3 (* 0-2 responses *)
  in
  let scr_amp () =
    if stressed then Rng.uniform rng ~lo:0.6 ~hi:1.5 else Rng.uniform rng ~lo:0.2 ~hi:0.6
  in
  let scrs =
    Array.init n_scr (fun _ ->
        (Rng.uniform rng ~lo:0.1 ~hi:0.9, scr_amp (), Rng.uniform rng ~lo:0.02 ~hi:0.04))
  in
  Array.init length (fun i ->
      let t = float_of_int i /. float_of_int length in
      let tonic = tonic_start +. (tonic_drift *. t) in
      let phasic =
        Array.fold_left
          (fun acc (onset, amp, rise) ->
            if t < onset then acc
            else
              let dt = t -. onset in
              (* fast sigmoid rise, slow recovery *)
              acc +. (amp *. (1. -. exp (-.dt /. rise)) *. exp (-.dt /. 0.15)))
          0. scrs
      in
      tonic +. phasic +. Rng.gaussian ~sigma:0.05 rng)

let make_dataset rng ~n ~length =
  let y = Array.init n (fun i -> i mod 2) in
  let x = Array.map (fun label -> eda_trace rng ~stressed:(label = 1) ~length) y in
  Dataset.make ~name:"EDA-stress" ~n_classes:2 ~x ~y

let () =
  let rng = Rng.create ~seed:11 in
  let raw = make_dataset rng ~n:240 ~length:128 in
  let split = Dataset.preprocess (Rng.create ~seed:12) raw in
  Printf.printf "EDA stress detection: %d traces, resized to %d samples\n"
    (Dataset.n_samples raw) (Dataset.length split.Dataset.train);

  let eval_model name model trained_split =
    let cfg_rng = Rng.create ~seed:13 in
    let cfg =
      if name = "ADAPT-pNC" then { Train.fast_config with Train.max_epochs = 150 }
      else
        {
          Train.fast_config with
          Train.max_epochs = 150;
          variation = Variation.none;
          mc_samples = 1;
        }
    in
    let _history = Train.train ~rng:cfg_rng cfg model trained_split in
    let erng = Rng.create ~seed:14 in
    let spec = Variation.uniform 0.1 in
    let noisy =
      Augment.perturb_dataset (Rng.create ~seed:15) Augment.default_policy split.Dataset.test
    in
    let acc_clean = Train.accuracy model split.Dataset.test in
    let acc_var =
      Train.accuracy_under_variation ~rng:erng ~spec ~draws:10 model split.Dataset.test
    in
    let acc_noisy = Train.accuracy_under_variation ~rng:erng ~spec ~draws:10 model noisy in
    Printf.printf "%-10s clean %.3f | ±10%% components %.3f | + sensor noise %.3f\n" name
      acc_clean acc_var acc_noisy
  in

  (* Baseline pTPNC: first-order filters, trained unaware of variation. *)
  let base =
    Model.Circuit (Network.create (Rng.create ~seed:16) Network.Ptpnc ~inputs:1 ~classes:2)
  in
  eval_model "pTPNC" base split;

  (* ADAPT-pNC: second-order learnable filters + variation-aware
     training + augmented training data. *)
  let arng = Rng.create ~seed:17 in
  let augment d = Augment.augment_dataset arng Augment.default_policy ~copies:1 d in
  let split_at =
    { split with Dataset.train = augment split.Dataset.train; valid = augment split.Dataset.valid }
  in
  let adapt =
    Model.Circuit (Network.create (Rng.create ~seed:18) Network.Adapt ~inputs:1 ~classes:2)
  in
  eval_model "ADAPT-pNC" adapt split_at;

  (* Where did the filters end up? Print the learned cutoff bands. *)
  (match adapt with
  | Model.Circuit net ->
      List.iteri
        (fun i (_, fl, _) ->
          let cutoffs = Pnc_core.Filter_layer.cutoff_hz fl in
          Printf.printf "layer %d learned cutoffs (Hz): %s\n" (i + 1)
            (String.concat ", "
               (Array.to_list (Array.map (Printf.sprintf "%.1f") cutoffs))))
        (Network.layers net)
  | _ -> ());
  print_endline "note: SCR dynamics (not absolute conductance) separate the classes."
