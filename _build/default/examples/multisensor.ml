(* Multi-sensor fusion: the paper's Fig. 4 shows a 6-input pTPB fed by
   several sensory signals at once. This example drives a 2-input
   ADAPT-pNC with two synthetic printed-sensor channels inside a smart
   food package:

     channel 0 - gas sensor (ethylene/VOC): ripening produce shows an
                 accelerating exponential rise; spoilage a late sharp
                 spike on top of drift;
     channel 1 - temperature: spoilage cases correlate with a warm
                 excursion, ripening does not.

   Classes: 0 = fresh, 1 = ripening, 2 = spoiling. Neither channel
   separates all three alone — the circuit has to fuse them, which is
   exactly what the input crossbar of the pTPB does.

   The training loop here works directly on Network.forward_multi
   (one [batch x 2] tensor per time step), showing the multivariate
   API that Table-I experiments (univariate UCR) do not exercise.

   Run with: dune exec examples/multisensor.exe *)

module T = Pnc_tensor.Tensor
module Var = Pnc_autodiff.Var
module Rng = Pnc_util.Rng
module Network = Pnc_core.Network
module Variation = Pnc_core.Variation
module Optimizer = Pnc_optim.Optimizer

let length = 64
let classes = 3

let trace rng label =
  let gas_rate =
    match label with 0 -> 0.2 | 1 -> 1.5 +. Rng.gaussian ~sigma:0.3 rng | _ -> 0.5
  in
  let spike_at = Rng.uniform rng ~lo:0.6 ~hi:0.85 in
  let warm_at = Rng.uniform rng ~lo:0.3 ~hi:0.6 in
  Array.init length (fun i ->
      let t = float_of_int i /. float_of_int length in
      let gas =
        (exp (gas_rate *. t) -. 1.)
        +. (if label = 2 && t > spike_at then 2.5 *. (t -. spike_at) /. 0.2 else 0.)
        +. Rng.gaussian ~sigma:0.08 rng
      in
      let temp =
        4.
        +. (if label = 2 then 6. *. exp (-.(((t -. warm_at) /. 0.12) ** 2.)) else 0.)
        +. Rng.gaussian ~sigma:0.3 rng
      in
      (gas, temp))

let normalize channel =
  Pnc_util.Vec.normalize_range channel

let make_set rng n =
  let y = Array.init n (fun i -> i mod classes) in
  let raw = Array.map (fun label -> trace rng label) y in
  (* per-channel, per-sample normalization to [-1, 1] as in the paper *)
  let x =
    Array.map
      (fun tr ->
        let gas = normalize (Array.map fst tr) in
        let temp = normalize (Array.map snd tr) in
        (gas, temp))
      raw
  in
  (x, y)

(* One [batch x 2] tensor per time step. *)
let steps_of x =
  Array.init length (fun k ->
      T.init ~rows:(Array.length x) ~cols:2 (fun s c ->
          let gas, temp = x.(s) in
          if c = 0 then gas.(k) else temp.(k)))

let accuracy net steps y =
  let logits = Network.forward_multi ~draw:Variation.deterministic net steps in
  Pnc_util.Stats.accuracy ~pred:(T.argmax_rows (Var.value logits)) ~truth:y

let () =
  let rng = Rng.create ~seed:31 in
  let x_train, y_train = make_set rng 180 in
  let x_test, y_test = make_set rng 90 in
  let train_steps = steps_of x_train and test_steps = steps_of x_test in
  Printf.printf "multi-sensor smart package: 2 channels x %d steps, %d classes\n" length classes;

  let net = Network.create ~hidden:6 (Rng.create ~seed:32) Network.Adapt ~inputs:2 ~classes in
  let params = Network.params net in
  let opt = Optimizer.adamw ~params () in
  let vrng = Rng.create ~seed:33 in
  for epoch = 1 to 250 do
    Optimizer.zero_grads opt;
    (* variation-aware: a fresh ±10% physical sample per epoch *)
    let draw = Variation.make_draw vrng (Variation.uniform 0.1) in
    let logits = Network.forward_multi ~draw net train_steps in
    let loss = Pnc_autodiff.Loss.softmax_cross_entropy ~logits ~labels:y_train in
    Var.backward loss;
    Optimizer.clip_grad_norm opt ~max_norm:5.;
    Optimizer.step opt ~lr:0.03;
    Network.clamp net;
    if epoch mod 50 = 0 then
      Printf.printf "epoch %3d: train loss %.4f\n%!" epoch (T.get_scalar (Var.value loss))
  done;

  Printf.printf "train accuracy: %.3f\n" (accuracy net train_steps y_train);
  Printf.printf "test accuracy:  %.3f\n" (accuracy net test_steps y_test);

  (* Fusion check: how good is the circuit with one channel zeroed? *)
  let ablate_channel c steps =
    Array.map
      (fun step -> T.init ~rows:(T.rows step) ~cols:2 (fun s j -> if j = c then 0. else T.get step s j))
      steps
  in
  Printf.printf "test accuracy, gas channel only:  %.3f\n"
    (accuracy net (ablate_channel 1 test_steps) y_test);
  Printf.printf "test accuracy, temp channel only: %.3f\n"
    (accuracy net (ablate_channel 0 test_steps) y_test);
  print_endline "(both single-channel scores should fall below the fused score)"
