(* Printability study: from a trained ADAPT-pNC to a manufacturable
   design.

   Training gives continuous component values; printing does not. This
   walk-through takes one trained circuit and answers the questions a
   printed-electronics engineer asks before sending it to the printer:

   1. Which component family is the accuracy actually sensitive to —
      crossbar conductances, filter RC products, or the activation
      circuit parameters? (That is where process control budget goes.)
   2. How many distinguishable ink levels does the crossbar need?
      (Conductance discretization ladder.)
   3. What does the physical netlist look like, and does its DC
      operating point match the training-time model?
   4. What does each element dissipate at the operating point?

   Run with: dune exec examples/printability_study.exe *)

module Dataset = Pnc_data.Dataset
module Registry = Pnc_data.Registry
module Network = Pnc_core.Network
module Model = Pnc_core.Model
module Train = Pnc_core.Train
module Sensitivity = Pnc_core.Sensitivity
module Discretize = Pnc_core.Discretize
module Netlist_export = Pnc_core.Netlist_export
module Crossbar = Pnc_core.Crossbar
module Report = Pnc_spice.Report
module Rng = Pnc_util.Rng

let () =
  (* Train a compact circuit on a PowerCons-style task. *)
  let raw = Registry.load ~seed:1 ~n:160 "PowerCons" in
  let split = Dataset.preprocess (Rng.create ~seed:2) raw in
  let net = Network.create ~hidden:4 (Rng.create ~seed:3) Network.Adapt ~inputs:1 ~classes:2 in
  let model = Model.Circuit net in
  let cfg = { Train.fast_config with Train.max_epochs = 200 } in
  let _ = Train.train ~rng:(Rng.create ~seed:4) cfg model split in
  Printf.printf "trained ADAPT-pNC, clean test accuracy %.3f\n\n"
    (Train.accuracy model split.Dataset.test);

  (* 1. Sensitivity per component family. *)
  print_endline "1. component-family sensitivity at ±15% variation:";
  let rows =
    Sensitivity.analyze ~rng:(Rng.create ~seed:5) ~level:0.15 ~draws:10 net split.Dataset.test
  in
  print_endline (Sensitivity.report rows);
  print_newline ();

  (* 2. Ink-level ladder. *)
  print_endline "2. conductance discretization (ink levels -> accuracy):";
  List.iter
    (fun (levels, acc) -> Printf.printf "   %2d levels: %.3f\n" levels acc)
    (Discretize.accuracy_ladder ~levels_list:[ 2; 3; 4; 6; 8; 16 ] net split.Dataset.test);
  print_newline ();

  (* 3. Physical netlist and model cross-check. *)
  (match Network.layers net with
  | (cb, _, _) :: _ ->
      let inputs = Array.make (Crossbar.inputs cb) 0.3 in
      let circ, _ = Netlist_export.crossbar cb ~inputs in
      Printf.printf "3. layer-1 crossbar netlist (%s); DC check: %s\n\n"
        (Pnc_spice.Deck.component_summary circ)
        (if Netlist_export.dc_check cb ~inputs ~max_abs_error:1e-9 then "model = circuit"
         else "MISMATCH");
      (* 4. Operating-point report of that crossbar. *)
      print_endline "4. operating point (inputs at 0.3 V):";
      let ops = Report.operating_point circ in
      print_string (Report.to_string ops);
      Printf.printf "total dissipation: %sW\n"
        (Pnc_spice.Deck.fmt_si (Report.total_dissipation ops))
  | [] -> ())
