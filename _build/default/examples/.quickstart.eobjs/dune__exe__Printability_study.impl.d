examples/printability_study.ml: Array List Pnc_core Pnc_data Pnc_spice Pnc_util Printf
