examples/multisensor.ml: Array Pnc_autodiff Pnc_core Pnc_optim Pnc_tensor Pnc_util Printf
