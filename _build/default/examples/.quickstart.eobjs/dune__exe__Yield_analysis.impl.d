examples/yield_analysis.ml: Array List Pnc_augment Pnc_core Pnc_data Pnc_util Printf String
