examples/stress_detection.mli:
