examples/printability_study.mli:
