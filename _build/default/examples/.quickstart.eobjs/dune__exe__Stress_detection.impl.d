examples/stress_detection.ml: Array List Pnc_augment Pnc_core Pnc_data Pnc_util Printf String
