examples/yield_analysis.mli:
