examples/quickstart.mli:
