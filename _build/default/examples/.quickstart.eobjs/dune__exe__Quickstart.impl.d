examples/quickstart.ml: Pnc_augment Pnc_core Pnc_data Pnc_util Printf
