examples/smart_packaging.ml: Array Pnc_augment Pnc_core Pnc_data Pnc_util Printf
