examples/filter_design.ml: Array List Pnc_core Pnc_signal Pnc_spice Pnc_util Printf
