examples/multisensor.mli:
