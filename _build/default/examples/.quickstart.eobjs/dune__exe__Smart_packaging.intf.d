examples/smart_packaging.mli:
