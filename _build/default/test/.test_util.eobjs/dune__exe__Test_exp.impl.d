test/test_exp.ml: Alcotest Array List Pnc_core Pnc_exp Pnc_util
