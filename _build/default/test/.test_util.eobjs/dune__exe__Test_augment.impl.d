test/test_augment.ml: Alcotest Array Float List Pnc_augment Pnc_data Pnc_util Printf QCheck QCheck_alcotest Set
