test/test_spice.ml: Alcotest Array Complex Float List Pnc_signal Pnc_spice Pnc_util Printf QCheck QCheck_alcotest String
