test/test_util.ml: Alcotest Array Float Fun Gen Int List Pnc_util Printf QCheck QCheck_alcotest Set String
