test/test_export.ml: Alcotest Array Float List Pnc_autodiff Pnc_core Pnc_data Pnc_exp Pnc_spice Pnc_tensor Pnc_util Printf String
