test/test_io.ml: Alcotest Array Filename Float Fun List Pnc_core Pnc_data Pnc_signal Pnc_spice Pnc_util Printf QCheck QCheck_alcotest String Sys
