test/test_signal.ml: Alcotest Array Complex Float Gen List Pnc_signal Pnc_util Printf QCheck QCheck_alcotest
