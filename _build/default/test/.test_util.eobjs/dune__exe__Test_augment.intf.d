test/test_augment.mli:
