test/test_data.ml: Alcotest Array Float List Pnc_data Pnc_util Printf QCheck QCheck_alcotest
