test/test_optim.ml: Alcotest Float List Pnc_autodiff Pnc_optim Pnc_tensor Pnc_util QCheck QCheck_alcotest
