test/test_autodiff.ml: Alcotest Array Float List Pnc_autodiff Pnc_tensor Pnc_util QCheck QCheck_alcotest
