test/test_tensor.ml: Alcotest Array Float Format List Pnc_tensor Pnc_util Printf QCheck QCheck_alcotest
