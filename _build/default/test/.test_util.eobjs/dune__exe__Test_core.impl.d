test/test_core.ml: Alcotest Array Float List Pnc_autodiff Pnc_core Pnc_data Pnc_signal Pnc_tensor Pnc_util Printf QCheck QCheck_alcotest
