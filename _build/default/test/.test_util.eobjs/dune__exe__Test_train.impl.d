test/test_train.ml: Alcotest Array Float List Pnc_autodiff Pnc_core Pnc_data Pnc_tensor Pnc_util Printf
