test/test_train.mli:
