(* Tests for FFT and analog/discrete filter models. *)

module Fft = Pnc_signal.Fft
module Filter = Pnc_signal.Filter
module Rng = Pnc_util.Rng
module Vec = Pnc_util.Vec

let approx ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps

let complex_of_real x = { Complex.re = x; im = 0. }

let rand_signal rng n = Array.init n (fun _ -> Rng.uniform rng ~lo:(-1.) ~hi:1.)

(* FFT -------------------------------------------------------------------- *)

let test_fft_matches_naive () =
  let rng = Rng.create ~seed:1 in
  List.iter
    (fun n ->
      let x = Array.map complex_of_real (rand_signal rng n) in
      let fast = Fft.fft x and slow = Fft.dft_naive x in
      Array.iteri
        (fun i f ->
          if Complex.norm (Complex.sub f slow.(i)) > 1e-8 then
            Alcotest.failf "n=%d bin %d: fast and naive differ" n i)
        fast)
    [ 2; 4; 8; 16; 64; 128 ]

let test_fft_roundtrip () =
  let rng = Rng.create ~seed:2 in
  List.iter
    (fun n ->
      let x = rand_signal rng n in
      let y = Fft.ifft_real (Fft.fft_real x) in
      Alcotest.(check bool) (Printf.sprintf "roundtrip n=%d" n) true
        (Vec.equal_eps ~eps:1e-9 x y))
    [ 1; 2; 3; 5; 8; 17; 64 ]

let test_fft_impulse () =
  (* FFT of a unit impulse is flat ones. *)
  let x = Array.init 8 (fun i -> complex_of_real (if i = 0 then 1. else 0.)) in
  let s = Fft.fft x in
  Array.iter
    (fun c ->
      Alcotest.(check bool) "flat spectrum" true
        (approx c.Complex.re 1. && approx c.Complex.im 0.))
    s

let test_fft_sine_peak () =
  (* A pure sine at bin 5 concentrates magnitude in bins 5 and n-5. *)
  let n = 64 in
  let x =
    Array.init n (fun i -> sin (2. *. Float.pi *. 5. *. float_of_int i /. float_of_int n))
  in
  let mag = Fft.magnitude (Fft.fft_real x) in
  let peak = Vec.argmax (Array.sub mag 0 (n / 2)) in
  Alcotest.(check int) "peak at bin 5" 5 peak;
  Alcotest.(check bool) "peak magnitude n/2" true (approx ~eps:1e-6 (float_of_int n /. 2.) mag.(5))

let test_fft_linearity () =
  let rng = Rng.create ~seed:3 in
  let a = rand_signal rng 32 and b = rand_signal rng 32 in
  let lhs = Fft.fft_real (Vec.add a b) in
  let rhs =
    Array.map2 (fun x y -> Complex.add x y) (Fft.fft_real a) (Fft.fft_real b)
  in
  Array.iteri
    (fun i c ->
      if Complex.norm (Complex.sub c rhs.(i)) > 1e-9 then Alcotest.failf "bin %d" i)
    lhs

let prop_parseval =
  QCheck.Test.make ~count:100 ~name:"Parseval: sum |x|^2 = sum |X|^2 / N"
    QCheck.(list_of_size Gen.(int_range 2 64) (float_range (-5.) 5.))
    (fun l ->
      let x = Array.of_list l in
      let n = float_of_int (Array.length x) in
      let time_energy = Vec.dot x x in
      let freq_energy = Vec.sum (Fft.power (Fft.fft_real x)) /. n in
      Float.abs (time_energy -. freq_energy) <= 1e-6 *. Float.max 1. time_energy)

let prop_roundtrip =
  QCheck.Test.make ~count:100 ~name:"ifft . fft = id (all lengths)"
    QCheck.(list_of_size Gen.(int_range 1 50) (float_range (-5.) 5.))
    (fun l ->
      let x = Array.of_list l in
      Vec.equal_eps ~eps:1e-8 x (Fft.ifft_real (Fft.fft_real x)))

(* Filter theory ----------------------------------------------------------- *)

let fo r c = { Filter.r; c }

let test_cutoff_formula () =
  let f = fo 1000. 1e-6 in
  (* RC = 1 ms -> fc = 159.15 Hz *)
  Alcotest.(check bool) "cutoff" true (approx ~eps:0.01 159.1549 (Filter.cutoff_hz f))

let test_magnitude_at_cutoff () =
  let f = fo 500. 2e-6 in
  let fc = Filter.cutoff_hz f in
  Alcotest.(check bool) "|H(fc)| = 1/sqrt2" true
    (approx ~eps:1e-9 (1. /. sqrt 2.) (Filter.magnitude_1st f fc))

let test_second_order_cutoff () =
  let so = { Filter.stage1 = fo 1000. 1e-6; stage2 = fo 1000. 1e-6 } in
  let fc2 = Filter.cutoff_2nd_hz so in
  let fc1 = Filter.cutoff_hz so.Filter.stage1 in
  (* Two identical cascaded stages: fc2 = fc1 * sqrt(sqrt(2) - 1) ≈ 0.6436 fc1 *)
  Alcotest.(check bool) "cascade cutoff ratio" true
    (approx ~eps:1e-3 (sqrt (sqrt 2. -. 1.)) (fc2 /. fc1));
  Alcotest.(check bool) "magnitude at fc2" true
    (approx ~eps:1e-6 (1. /. sqrt 2.) (Filter.magnitude_2nd so fc2))

let test_second_order_sharper_rolloff () =
  let f1 = fo 1000. 1e-6 in
  let so = { Filter.stage1 = f1; stage2 = f1 } in
  let f_test = 10. *. Filter.cutoff_hz f1 in
  Alcotest.(check bool) "sharper attenuation" true
    (Filter.magnitude_2nd so f_test < Filter.magnitude_1st f1 f_test)

let test_discrete_coeffs () =
  let f = fo 100. 1e-5 in
  (* RC = 1e-3 *)
  let { Filter.a; b } = Filter.discrete_coeffs ~dt:1e-3 f in
  Alcotest.(check bool) "a" true (approx ~eps:1e-12 0.5 a);
  Alcotest.(check bool) "b" true (approx ~eps:1e-12 0.5 b);
  (* mu > 1 lowers both coefficients' denominator share *)
  let { Filter.a = a'; b = b' } = Filter.discrete_coeffs ~mu:1.3 ~dt:1e-3 f in
  Alcotest.(check bool) "a shrinks with mu" true (a' < a);
  Alcotest.(check bool) "b shrinks with mu" true (b' < b)

let test_dc_gain () =
  let f = fo 100. 1e-5 in
  let c1 = Filter.discrete_coeffs ~dt:1e-3 f in
  Alcotest.(check bool) "unit dc gain at mu=1" true (approx ~eps:1e-12 1. (Filter.dc_gain c1));
  let c2 = Filter.discrete_coeffs ~mu:1.2 ~dt:1e-3 f in
  Alcotest.(check bool) "dc gain < 1 for mu>1" true (Filter.dc_gain c2 < 1.)

let test_step_response_converges () =
  let f = fo 1000. 1e-6 in
  let co = Filter.discrete_coeffs ~dt:1e-4 f in
  let resp = Filter.step_response co 2000 in
  Alcotest.(check bool) "monotone rise" true
    (Array.for_all (fun x -> x >= 0. && x <= 1. +. 1e-9) resp);
  Alcotest.(check bool) "reaches dc gain" true
    (approx ~eps:1e-6 (Filter.dc_gain co) resp.(1999))

let test_impulse_response_decays () =
  let f = fo 1000. 1e-6 in
  let co = Filter.discrete_coeffs ~dt:1e-4 f in
  let h = Filter.impulse_response co 500 in
  Alcotest.(check bool) "peak at 0" true (h.(0) > h.(1));
  Alcotest.(check bool) "decays to 0" true (Float.abs h.(499) < 1e-9);
  (* geometric decay ratio equals a *)
  Alcotest.(check bool) "ratio = a" true (approx ~eps:1e-9 co.Filter.a (h.(10) /. h.(9)))

let test_apply_second_order_is_cascade () =
  let rng = Rng.create ~seed:4 in
  let input = rand_signal rng 50 in
  let c1 = Filter.discrete_coeffs ~dt:0.01 (fo 300. 1e-5) in
  let c2 = Filter.discrete_coeffs ~dt:0.01 (fo 700. 2e-5) in
  let cascade = Filter.apply_second_order ~c1 ~c2 input in
  let manual = Filter.apply c2 (Filter.apply c1 input) in
  Alcotest.(check bool) "equal" true (Vec.equal_eps ~eps:1e-12 cascade manual)

let test_settling_monotone_in_rc () =
  let co_fast = Filter.discrete_coeffs ~dt:1e-4 (fo 100. 1e-6) in
  let co_slow = Filter.discrete_coeffs ~dt:1e-4 (fo 10_000. 1e-6) in
  Alcotest.(check bool) "larger RC settles slower" true
    (Filter.settling_steps co_slow ~eps:1e-3 > Filter.settling_steps co_fast ~eps:1e-3)

let test_filter_v0_forgotten () =
  (* Stability implies the initial condition washes out: two different
     V0 converge to the same trajectory. *)
  let co = Filter.discrete_coeffs ~dt:1e-3 (fo 500. 1e-5) in
  let input = Array.init 400 (fun i -> sin (0.05 *. float_of_int i)) in
  let a = Filter.apply co ~v0:1. input in
  let b = Filter.apply co ~v0:(-1.) input in
  Alcotest.(check bool) "initially different" true (Float.abs (a.(0) -. b.(0)) > 0.1);
  Alcotest.(check bool) "eventually identical" true (Float.abs (a.(399) -. b.(399)) < 1e-6)

let test_invalid_filter_inputs_assert () =
  let expect_assert name f =
    match f () with
    | exception Assert_failure _ -> ()
    | _ -> Alcotest.fail ("expected assertion: " ^ name)
  in
  expect_assert "negative R" (fun () -> Filter.discrete_coeffs ~dt:0.01 (fo (-1.) 1e-6));
  expect_assert "zero dt" (fun () -> Filter.discrete_coeffs ~dt:0. (fo 100. 1e-6));
  expect_assert "negative mu" (fun () -> Filter.discrete_coeffs ~mu:(-1.) ~dt:0.01 (fo 100. 1e-6))

let prop_magnitude_monotone =
  QCheck.Test.make ~count:200 ~name:"first-order magnitude decreases with frequency"
    QCheck.(triple (float_range 10. 1000.) (float_range 1e-7 1e-4) (pair (float_range 0.1 1e4) (float_range 0.1 1e4)))
    (fun (r, c, (f1, f2)) ->
      let f1, f2 = if f1 <= f2 then (f1, f2) else (f2, f1) in
      Filter.magnitude_1st { Filter.r; c } f1 >= Filter.magnitude_1st { Filter.r; c } f2 -. 1e-12)

let prop_fft_shift_magnitude =
  QCheck.Test.make ~count:100 ~name:"circular shift preserves FFT magnitude"
    QCheck.(pair (list_of_size Gen.(return 32) (float_range (-3.) 3.)) (int_range 1 31))
    (fun (l, shift) ->
      let x = Array.of_list l in
      let shifted = Array.init 32 (fun i -> x.((i + shift) mod 32)) in
      let m1 = Fft.magnitude (Fft.fft_real x) in
      let m2 = Fft.magnitude (Fft.fft_real shifted) in
      Vec.equal_eps ~eps:1e-6 m1 m2)

let prop_stability =
  QCheck.Test.make ~count:200 ~name:"discrete filter stable over printable ranges"
    QCheck.(
      triple (float_range 10. 1000.) (* R < 1k as in the paper *)
        (float_range 1e-7 1e-4) (* C in 100nF..100uF *)
        (float_range 1. 1.3) (* mu *))
    (fun (r, c, mu) ->
      let co = Filter.discrete_coeffs ~mu ~dt:0.01 (fo r c) in
      Filter.is_stable co && co.Filter.a >= 0. && co.Filter.b > 0. && Filter.dc_gain co <= 1. +. 1e-9)

let prop_filter_smooths =
  QCheck.Test.make ~count:100 ~name:"low-pass reduces total variation"
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Rng.create ~seed in
      let x = rand_signal rng 100 in
      let co = Filter.discrete_coeffs ~dt:0.02 (fo 500. 1e-4) in
      let y = Filter.apply co x in
      let tv a =
        let acc = ref 0. in
        for i = 1 to Array.length a - 1 do
          acc := !acc +. Float.abs (a.(i) -. a.(i - 1))
        done;
        !acc
      in
      tv y <= tv x +. 1e-9)

let () =
  let qc =
    List.map QCheck_alcotest.to_alcotest
      [
        prop_parseval; prop_roundtrip; prop_stability; prop_filter_smooths;
        prop_magnitude_monotone; prop_fft_shift_magnitude;
      ]
  in
  Alcotest.run "pnc_signal"
    [
      ( "fft",
        [
          Alcotest.test_case "matches naive DFT" `Quick test_fft_matches_naive;
          Alcotest.test_case "roundtrip" `Quick test_fft_roundtrip;
          Alcotest.test_case "impulse" `Quick test_fft_impulse;
          Alcotest.test_case "sine peak" `Quick test_fft_sine_peak;
          Alcotest.test_case "linearity" `Quick test_fft_linearity;
        ] );
      ( "filter",
        [
          Alcotest.test_case "cutoff formula" `Quick test_cutoff_formula;
          Alcotest.test_case "|H(fc)|" `Quick test_magnitude_at_cutoff;
          Alcotest.test_case "second-order cutoff" `Quick test_second_order_cutoff;
          Alcotest.test_case "sharper rolloff" `Quick test_second_order_sharper_rolloff;
          Alcotest.test_case "discrete coefficients" `Quick test_discrete_coeffs;
          Alcotest.test_case "dc gain" `Quick test_dc_gain;
          Alcotest.test_case "step response" `Quick test_step_response_converges;
          Alcotest.test_case "impulse response" `Quick test_impulse_response_decays;
          Alcotest.test_case "cascade = two stages" `Quick test_apply_second_order_is_cascade;
          Alcotest.test_case "settling monotone in RC" `Quick test_settling_monotone_in_rc;
          Alcotest.test_case "v0 forgotten" `Quick test_filter_v0_forgotten;
          Alcotest.test_case "invalid inputs assert" `Quick test_invalid_filter_inputs_assert;
        ] );
      ("properties", qc);
    ]
