(* Tests for the dataset container and the 15 synthetic generators. *)

module Dataset = Pnc_data.Dataset
module Registry = Pnc_data.Registry
module Rng = Pnc_util.Rng
module Vec = Pnc_util.Vec
module Stats = Pnc_util.Stats

let mk_toy () =
  let x = Array.init 10 (fun i -> Array.init 8 (fun j -> float_of_int ((i * 8) + j))) in
  let y = Array.init 10 (fun i -> i mod 2) in
  Dataset.make ~name:"toy" ~n_classes:2 ~x ~y

(* Dataset container ------------------------------------------------------- *)

let test_make_and_shape () =
  let d = mk_toy () in
  Alcotest.(check int) "samples" 10 (Dataset.n_samples d);
  Alcotest.(check int) "length" 8 (Dataset.length d);
  Alcotest.(check (array int)) "class counts" [| 5; 5 |] (Dataset.class_counts d)

let test_resize () =
  let d = Dataset.resize (mk_toy ()) 64 in
  Alcotest.(check int) "new length" 64 (Dataset.length d);
  (* endpoints preserved by linear resampling *)
  Alcotest.(check (float 1e-9)) "first" 0. d.Dataset.x.(0).(0);
  Alcotest.(check (float 1e-9)) "last" 7. d.Dataset.x.(0).(63)

let test_normalize () =
  let d = Dataset.normalize (mk_toy ()) in
  Array.iter
    (fun s ->
      Alcotest.(check (float 1e-9)) "min -1" (-1.) (Vec.min s);
      Alcotest.(check (float 1e-9)) "max 1" 1. (Vec.max s))
    d.Dataset.x

let test_shuffle_preserves_pairs () =
  let d = mk_toy () in
  let s = Dataset.shuffle (Rng.create ~seed:3) d in
  (* In the toy set, sample i starts with value 8*i and label i mod 2:
     the pairing must survive the shuffle. *)
  Array.iteri
    (fun i series ->
      let orig = int_of_float series.(0) / 8 in
      Alcotest.(check int) "label follows series" (orig mod 2) s.Dataset.y.(i))
    s.Dataset.x

let test_split_fractions () =
  let d = Registry.load ~seed:0 "CBF" in
  let { Dataset.train; valid; test } = Dataset.preprocess (Rng.create ~seed:1) d in
  let n = Dataset.n_samples d in
  Alcotest.(check int) "total preserved" n
    (Dataset.n_samples train + Dataset.n_samples valid + Dataset.n_samples test);
  let frac x = float_of_int (Dataset.n_samples x) /. float_of_int n in
  Alcotest.(check bool) "train ~60%" true (Float.abs (frac train -. 0.6) < 0.02);
  Alcotest.(check bool) "valid ~20%" true (Float.abs (frac valid -. 0.2) < 0.02);
  Alcotest.(check int) "preprocessed length" 64 (Dataset.length train)

let test_split_no_overlap () =
  (* Different splits partition the sample set: series in train must not
     reappear in test (generators make duplicate series vanishingly
     unlikely). *)
  let d = Registry.load ~seed:5 "PowerCons" in
  let { Dataset.train; test; _ } = Dataset.preprocess (Rng.create ~seed:7) d in
  Array.iter
    (fun s ->
      Array.iter
        (fun t ->
          if Vec.equal_eps ~eps:0. s t then Alcotest.fail "series appears in both splits")
        test.Dataset.x)
    train.Dataset.x

let test_concat () =
  let a = mk_toy () and b = mk_toy () in
  let c = Dataset.concat a b in
  Alcotest.(check int) "doubled" 20 (Dataset.n_samples c)

let test_map_series () =
  let d = Dataset.map_series (Array.map (fun x -> 2. *. x)) (mk_toy ()) in
  Alcotest.(check (float 1e-9)) "doubled values" 2. d.Dataset.x.(0).(1)

(* Generators ---------------------------------------------------------------- *)

let test_registry_complete () =
  Alcotest.(check int) "15 datasets" 15 (List.length Registry.all);
  let expected =
    [ "CBF"; "DPTW"; "FRT"; "FST"; "GPAS"; "GPMVF"; "GPOVY"; "MPOAG"; "MSRT";
      "PowerCons"; "PPOC"; "SRSCP2"; "Slope"; "SmoothS"; "Symbols" ]
  in
  Alcotest.(check (list string)) "paper order" expected Registry.names

let test_generators_shapes () =
  List.iter
    (fun spec ->
      let d = Registry.load ~seed:42 spec.Registry.name in
      Alcotest.(check string) "name" spec.Registry.name d.Pnc_data.Dataset.name;
      Alcotest.(check int) "classes" spec.Registry.n_classes d.Pnc_data.Dataset.n_classes;
      Alcotest.(check int) "samples" spec.Registry.default_n (Dataset.n_samples d);
      Alcotest.(check int) "length" 128 (Dataset.length d);
      Array.iter
        (fun s -> Array.iter (fun v -> if Float.is_nan v then Alcotest.fail "NaN in series") s)
        d.Pnc_data.Dataset.x)
    Registry.all

let test_generators_deterministic () =
  List.iter
    (fun name ->
      let a = Registry.load ~seed:11 name and b = Registry.load ~seed:11 name in
      Alcotest.(check bool) (name ^ " deterministic") true
        (Array.for_all2 (Vec.equal_eps ~eps:0.) a.Pnc_data.Dataset.x b.Pnc_data.Dataset.x))
    Registry.names

let test_generators_seed_sensitivity () =
  let a = Registry.load ~seed:1 "CBF" and b = Registry.load ~seed:2 "CBF" in
  Alcotest.(check bool) "different seeds differ" false
    (Array.for_all2 (Vec.equal_eps ~eps:0.) a.Pnc_data.Dataset.x b.Pnc_data.Dataset.x)

let test_classes_all_present () =
  List.iter
    (fun spec ->
      let d = Registry.load ~seed:3 spec.Registry.name in
      let counts = Dataset.class_counts d in
      Array.iteri
        (fun c k ->
          if k = 0 then Alcotest.failf "%s: class %d empty" spec.Registry.name c)
        counts;
      (* roughly balanced: each class within a factor 2 of the expected share *)
      let expected = float_of_int (Dataset.n_samples d) /. float_of_int spec.Registry.n_classes in
      Array.iter
        (fun k ->
          let f = float_of_int k in
          if f < expected /. 2. || f > expected *. 2. then
            Alcotest.failf "%s: class imbalance (%d vs expected %.0f)" spec.Registry.name k expected)
        counts)
    Registry.all

(* A 1-nearest-neighbour sanity check: each generated dataset must carry
   class signal (well above chance), and the near-chance datasets must
   stay hard. *)
let nn_accuracy d =
  let { Dataset.train; test; _ } = Dataset.preprocess (Rng.create ~seed:5) d in
  let dist a b =
    let acc = ref 0. in
    Array.iteri (fun i x -> acc := !acc +. ((x -. b.(i)) ** 2.)) a;
    !acc
  in
  let predict s =
    let best = ref 0 and best_d = ref infinity in
    Array.iteri
      (fun i tr ->
        let dd = dist s tr in
        if dd < !best_d then begin
          best_d := dd;
          best := train.Dataset.y.(i)
        end)
      train.Dataset.x;
    !best
  in
  let pred = Array.map predict test.Dataset.x in
  Stats.accuracy ~pred ~truth:test.Dataset.y

let test_class_signal () =
  List.iter
    (fun (name, min_acc) ->
      let d = Registry.load ~seed:17 name in
      let acc = nn_accuracy d in
      if acc < min_acc then Alcotest.failf "%s: 1-NN accuracy %.3f below %.3f" name acc min_acc)
    [
      ("CBF", 0.75); ("GPOVY", 0.9); ("PowerCons", 0.85); ("SmoothS", 0.8);
      ("Slope", 0.7); ("Symbols", 0.8); ("FRT", 0.7);
    ]

let test_hard_datasets_stay_hard () =
  let d = Registry.load ~seed:17 "SRSCP2" in
  let acc = nn_accuracy d in
  Alcotest.(check bool) (Printf.sprintf "SRSCP2 near chance (%.3f)" acc) true (acc < 0.8)

let test_load_unknown_raises () =
  Alcotest.check_raises "unknown dataset" Not_found (fun () ->
      ignore (Registry.load ~seed:0 "NoSuchDataset"))

let expect_assert name f =
  match f () with
  | exception Assert_failure _ -> ()
  | _ -> Alcotest.fail ("expected assertion: " ^ name)

let test_make_validation () =
  expect_assert "mismatched labels" (fun () ->
      Dataset.make ~name:"x" ~n_classes:2 ~x:[| [| 1. |] |] ~y:[| 0; 1 |]);
  expect_assert "label out of range" (fun () ->
      Dataset.make ~name:"x" ~n_classes:2 ~x:[| [| 1. |] |] ~y:[| 2 |]);
  expect_assert "ragged series" (fun () ->
      Dataset.make ~name:"x" ~n_classes:1 ~x:[| [| 1. |]; [| 1.; 2. |] |] ~y:[| 0; 0 |]);
  expect_assert "empty" (fun () -> Dataset.make ~name:"x" ~n_classes:1 ~x:[||] ~y:[||])

let test_concat_validation () =
  let a = mk_toy () in
  let b = Dataset.resize a 16 in
  expect_assert "length mismatch" (fun () -> Dataset.concat a b)

let test_custom_n_override () =
  let d = Registry.load ~seed:0 ~n:33 "CBF" in
  Alcotest.(check int) "n override" 33 (Dataset.n_samples d)

let prop_generator_finite =
  QCheck.Test.make ~count:30 ~name:"generated series are finite and bounded"
    QCheck.(pair (int_range 0 1000) (int_range 0 14))
    (fun (seed, idx) ->
      let name = List.nth Registry.names idx in
      let d = Registry.load ~seed ~n:20 name in
      Array.for_all
        (fun s -> Array.for_all (fun v -> Float.is_finite v && Float.abs v < 100.) s)
        d.Pnc_data.Dataset.x)

let () =
  Alcotest.run "pnc_data"
    [
      ( "dataset",
        [
          Alcotest.test_case "make/shape" `Quick test_make_and_shape;
          Alcotest.test_case "resize" `Quick test_resize;
          Alcotest.test_case "normalize" `Quick test_normalize;
          Alcotest.test_case "shuffle keeps pairs" `Quick test_shuffle_preserves_pairs;
          Alcotest.test_case "split fractions" `Quick test_split_fractions;
          Alcotest.test_case "split no overlap" `Quick test_split_no_overlap;
          Alcotest.test_case "concat" `Quick test_concat;
          Alcotest.test_case "map_series" `Quick test_map_series;
          Alcotest.test_case "make validation" `Quick test_make_validation;
          Alcotest.test_case "concat validation" `Quick test_concat_validation;
          Alcotest.test_case "n override" `Quick test_custom_n_override;
        ] );
      ( "generators",
        [
          Alcotest.test_case "registry complete" `Quick test_registry_complete;
          Alcotest.test_case "shapes" `Quick test_generators_shapes;
          Alcotest.test_case "deterministic" `Quick test_generators_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_generators_seed_sensitivity;
          Alcotest.test_case "classes present+balanced" `Quick test_classes_all_present;
          Alcotest.test_case "class signal (1-NN)" `Quick test_class_signal;
          Alcotest.test_case "hard datasets stay hard" `Quick test_hard_datasets_stay_hard;
          Alcotest.test_case "unknown raises" `Quick test_load_unknown_raises;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_generator_finite ]);
    ]
