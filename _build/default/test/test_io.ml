(* Tests for the interop/diagnostic modules: UCR TSV loading, dataset
   diagnostics, spectral estimation and SPICE deck parsing. *)

module Dataset = Pnc_data.Dataset
module Ucr_io = Pnc_data.Ucr_io
module Describe = Pnc_data.Describe
module Registry = Pnc_data.Registry
module Spectrum = Pnc_signal.Spectrum
module Circuit = Pnc_spice.Circuit
module Deck = Pnc_spice.Deck
module Parse = Pnc_spice.Parse
module Rng = Pnc_util.Rng
module Vec = Pnc_util.Vec

let approx ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps

(* Ucr_io ------------------------------------------------------------------- *)

let sample_tsv = "1\t0.5\t0.25\t-0.5\n-1\t1.0\t0.0\t-1.0\n1\t0.1\t0.2\t0.3\n"

let test_parse_tsv () =
  let d = Ucr_io.parse ~name:"toy" sample_tsv in
  Alcotest.(check int) "samples" 3 (Dataset.n_samples d);
  Alcotest.(check int) "length" 3 (Dataset.length d);
  Alcotest.(check int) "classes" 2 d.Dataset.n_classes;
  (* label 1 first seen -> class 0; -1 -> class 1 *)
  Alcotest.(check (array int)) "remapped labels" [| 0; 1; 0 |] d.Dataset.y;
  Alcotest.(check (float 1e-12)) "value" 0.25 d.Dataset.x.(0).(1)

let test_parse_csv_variant () =
  let d = Ucr_io.parse ~name:"csv" "0,1.5,2.5\n1,3.5,4.5\n" in
  Alcotest.(check int) "samples" 2 (Dataset.n_samples d);
  Alcotest.(check (float 1e-12)) "comma values" 4.5 d.Dataset.x.(1).(1)

let test_parse_blank_lines_skipped () =
  let d = Ucr_io.parse ~name:"b" "0\t1\t2\n\n\n1\t3\t4\n" in
  Alcotest.(check int) "two samples" 2 (Dataset.n_samples d)

let test_parse_errors () =
  let expect_failure name contents =
    match Ucr_io.parse ~name:"x" contents with
    | exception Failure _ -> ()
    | _ -> Alcotest.fail ("expected Failure: " ^ name)
  in
  expect_failure "ragged" "0\t1\t2\n1\t3\n";
  expect_failure "non-numeric" "0\tabc\n";
  expect_failure "label only" "0\n";
  expect_failure "empty" "\n\n"

let test_roundtrip_through_tsv () =
  let d = Registry.load ~seed:3 ~n:20 "CBF" in
  let d2 = Ucr_io.parse ~name:"CBF" (Ucr_io.to_string d) in
  Alcotest.(check int) "samples preserved" (Dataset.n_samples d) (Dataset.n_samples d2);
  Alcotest.(check bool) "series preserved" true
    (Array.for_all2 (Vec.equal_eps ~eps:1e-9) d.Dataset.x d2.Dataset.x);
  Alcotest.(check (array int)) "labels preserved" d.Dataset.y d2.Dataset.y

let test_file_io () =
  let d = Registry.load ~seed:4 ~n:10 "Slope" in
  let path = Filename.temp_file "pnc_ucr" ".tsv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Ucr_io.save_file d path;
      let d2 = Ucr_io.load_file path in
      Alcotest.(check int) "loaded samples" 10 (Dataset.n_samples d2))

let test_default_name_strips_suffix () =
  let d = Registry.load ~seed:4 ~n:6 "Slope" in
  let dir = Filename.get_temp_dir_name () in
  let path = Filename.concat dir "Coffee_TRAIN.tsv" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      Ucr_io.save_file d path;
      let d2 = Ucr_io.load_file path in
      Alcotest.(check string) "suffix stripped" "Coffee" d2.Dataset.name)

let test_load_pair () =
  let d = Registry.load ~seed:4 ~n:12 "Slope" in
  let dir = Filename.get_temp_dir_name () in
  let train = Filename.concat dir "pnc_pair_TRAIN.tsv" in
  let test = Filename.concat dir "pnc_pair_TEST.tsv" in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun p -> if Sys.file_exists p then Sys.remove p) [ train; test ])
    (fun () ->
      Ucr_io.save_file d train;
      Ucr_io.save_file d test;
      let pair = Ucr_io.load_pair ~train ~test ~name:"Slope" in
      Alcotest.(check int) "pooled" 24 (Dataset.n_samples pair);
      Alcotest.(check int) "classes shared" d.Dataset.n_classes pair.Dataset.n_classes)

let test_label_map () =
  let map = Ucr_io.label_map sample_tsv in
  Alcotest.(check (list (pair string int))) "first-appearance order" [ ("1", 0); ("-1", 1) ] map

(* Describe -------------------------------------------------------------------- *)

let test_describe_stats () =
  let d = Registry.load ~seed:5 "GPOVY" in
  let s = Describe.stats d in
  Alcotest.(check int) "classes" 2 s.Describe.n_classes;
  Alcotest.(check bool) "separable dataset has separability > 0.3" true
    (Describe.separability s > 0.3);
  Alcotest.(check bool) "bounded values" true (s.Describe.value_min < s.Describe.value_max)

let test_describe_nn_matches_difficulty () =
  let easy = Describe.nn_accuracy (Registry.load ~seed:6 "GPOVY") in
  let hard = Describe.nn_accuracy (Registry.load ~seed:6 "SRSCP2") in
  Alcotest.(check bool) (Printf.sprintf "easy %.2f > hard %.2f" easy hard) true (easy > hard)

let test_describe_report () =
  let r = Describe.report (Registry.load ~seed:7 ~n:30 "CBF") in
  Alcotest.(check bool) "mentions 1-NN" true
    (String.length r > 0 && String.split_on_char '\n' r |> List.length >= 4)

(* Spectrum ---------------------------------------------------------------------- *)

let test_periodogram_peak () =
  let fs = 100. in
  let n = 200 in
  let x = Array.init n (fun i -> sin (2. *. Float.pi *. 10. *. float_of_int i /. fs)) in
  let psd = Spectrum.periodogram ~fs x in
  let peak_f, _ =
    Array.fold_left (fun (bf, bp) (f, p) -> if p > bp then (f, p) else (bf, bp)) (0., 0.) psd
  in
  Alcotest.(check (float 0.6)) "peak at 10 Hz" 10. peak_f

let test_periodogram_parseval () =
  let rng = Rng.create ~seed:8 in
  let x = Array.init 128 (fun _ -> Rng.gaussian rng) in
  let x = Vec.offset (-.Vec.mean x) x in
  let psd = Spectrum.periodogram ~fs:1. x in
  let power = Array.fold_left (fun acc (_, p) -> acc +. p) 0. psd in
  let variance = Vec.dot x x /. float_of_int (Array.length x) in
  Alcotest.(check bool)
    (Printf.sprintf "power %.4f ~ variance %.4f" power variance)
    true
    (Float.abs (power -. variance) < 0.02 *. variance)

let test_welch_smoother_than_periodogram () =
  (* For white noise, Welch's averaged estimate has lower variance
     across bins than the raw periodogram. *)
  let rng = Rng.create ~seed:9 in
  let x = Array.init 512 (fun _ -> Rng.gaussian rng) in
  let spread psd =
    let values = Array.map snd psd in
    Pnc_util.Stats.std values /. Float.max 1e-12 (Pnc_util.Stats.mean values)
  in
  let raw = spread (Spectrum.periodogram ~fs:1. x) in
  let welch = spread (Spectrum.welch ~fs:1. ~segment:128 x) in
  Alcotest.(check bool) (Printf.sprintf "welch %.2f < raw %.2f" welch raw) true (welch < raw)

let test_band_power_and_rolloff () =
  let fs = 64. in
  let x = Array.init 256 (fun i -> sin (2. *. Float.pi *. 4. *. float_of_int i /. fs)) in
  let psd = Spectrum.periodogram ~fs x in
  let low = Spectrum.band_power psd ~lo_hz:0. ~hi_hz:8. in
  let high = Spectrum.band_power psd ~lo_hz:8. ~hi_hz:32. in
  Alcotest.(check bool) "power concentrated low" true (low > 100. *. Float.max 1e-12 high);
  Alcotest.(check bool) "rolloff near the tone" true (Spectrum.rolloff_hz psd < 6.);
  Alcotest.(check (float 0.5)) "centroid at tone" 4. (Spectrum.centroid_hz psd)

let test_hann_window () =
  let w = Spectrum.hann 64 in
  Alcotest.(check (float 1e-12)) "zero at edges" 0. w.(0);
  Alcotest.(check bool) "peak at center" true (w.(32) > 0.99)

(* Parse ------------------------------------------------------------------------- *)

let test_value_suffixes () =
  List.iter
    (fun (s, expected) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s -> %g" s expected)
        true
        (approx ~eps:(1e-9 *. Float.abs expected) expected (Parse.value s)))
    [
      ("4.7k", 4700.); ("100n", 1e-7); ("1Meg", 1e6); ("10m", 0.01); ("2.2u", 2.2e-6);
      ("3p", 3e-12); ("5", 5.); ("1e3", 1000.); ("-2.5k", -2500.);
    ]

let test_value_errors () =
  match Parse.value "12xyz" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected Failure"

let test_parse_deck_solves () =
  let deck = "* divider\nV1 in 0 DC 1\nR1 in mid 1k\nR2 mid 0 3k\n.end\n" in
  let circ = Parse.deck deck in
  let sol = Pnc_spice.Dc.solve circ in
  let mid = Circuit.node circ "mid" in
  Alcotest.(check (float 1e-9)) "parsed divider solves" 0.75 (Pnc_spice.Dc.voltage sol mid)

let test_roundtrip_linear () =
  let c = Circuit.create () in
  let a = Circuit.node c "a" and b = Circuit.node c "b" in
  Circuit.vsource c ~name:"V1" ~ac:1. a Circuit.ground 2.5;
  Circuit.resistor c ~name:"R1" a b 4700.;
  Circuit.capacitor c ~name:"C1" b Circuit.ground 1e-7;
  Circuit.isource c ~name:"I1" Circuit.ground b 1e-3;
  Circuit.vccs c ~name:"G1" ~out_p:b ~out_n:Circuit.ground ~in_p:a ~in_n:Circuit.ground
    ~gm:1e-3 ();
  Alcotest.(check bool) "deck roundtrip" true (Parse.roundtrip_equal c)

let test_roundtrip_exported_crossbar () =
  (* The deck of an exported trained crossbar parses back equivalently. *)
  let rng = Rng.create ~seed:10 in
  let cb = Pnc_core.Crossbar.create rng ~inputs:3 ~outputs:2 in
  let circ, _ = Pnc_core.Netlist_export.crossbar cb ~inputs:[| 0.2; -0.4; 0.9 |] in
  Alcotest.(check bool) "roundtrip" true (Parse.roundtrip_equal circ)

let prop_value_roundtrip =
  QCheck.Test.make ~count:200 ~name:"fmt_si . value roundtrip within 0.1%"
    QCheck.(float_range 1e-9 1e8)
    (fun v ->
      let parsed = Parse.value (Deck.fmt_si v) in
      Float.abs (parsed -. v) <= 2e-3 *. v)

let () =
  Alcotest.run "pnc_io"
    [
      ( "ucr-io",
        [
          Alcotest.test_case "parse tsv" `Quick test_parse_tsv;
          Alcotest.test_case "parse csv" `Quick test_parse_csv_variant;
          Alcotest.test_case "blank lines" `Quick test_parse_blank_lines_skipped;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "roundtrip" `Quick test_roundtrip_through_tsv;
          Alcotest.test_case "file io" `Quick test_file_io;
          Alcotest.test_case "name suffix" `Quick test_default_name_strips_suffix;
          Alcotest.test_case "load pair" `Quick test_load_pair;
          Alcotest.test_case "label map" `Quick test_label_map;
        ] );
      ( "describe",
        [
          Alcotest.test_case "stats" `Quick test_describe_stats;
          Alcotest.test_case "nn difficulty" `Quick test_describe_nn_matches_difficulty;
          Alcotest.test_case "report" `Quick test_describe_report;
        ] );
      ( "spectrum",
        [
          Alcotest.test_case "periodogram peak" `Quick test_periodogram_peak;
          Alcotest.test_case "parseval" `Quick test_periodogram_parseval;
          Alcotest.test_case "welch variance" `Quick test_welch_smoother_than_periodogram;
          Alcotest.test_case "band power / rolloff / centroid" `Quick test_band_power_and_rolloff;
          Alcotest.test_case "hann" `Quick test_hann_window;
        ] );
      ( "spice-parse",
        [
          Alcotest.test_case "value suffixes" `Quick test_value_suffixes;
          Alcotest.test_case "value errors" `Quick test_value_errors;
          Alcotest.test_case "parsed deck solves" `Quick test_parse_deck_solves;
          Alcotest.test_case "linear roundtrip" `Quick test_roundtrip_linear;
          Alcotest.test_case "exported crossbar roundtrip" `Quick test_roundtrip_exported_crossbar;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_value_roundtrip ]);
    ]
