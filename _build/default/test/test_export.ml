(* Tests for the extension modules: SPICE deck rendering, trained-model
   netlist export with DC cross-validation, Monte-Carlo yield analysis
   and the architecture search. *)

module T = Pnc_tensor.Tensor
module Var = Pnc_autodiff.Var
module Rng = Pnc_util.Rng
module Circuit = Pnc_spice.Circuit
module Deck = Pnc_spice.Deck
module Ac = Pnc_spice.Ac
module Crossbar = Pnc_core.Crossbar
module Network = Pnc_core.Network
module Model = Pnc_core.Model
module Variation = Pnc_core.Variation
module Filter_layer = Pnc_core.Filter_layer
module Netlist_export = Pnc_core.Netlist_export
module Yield = Pnc_core.Yield
module Search = Pnc_exp.Search
module Config = Pnc_exp.Config

(* Substring search helper (Stdlib.String has no [contains] for substrings). *)
module Str_contains = struct
  let contains haystack needle =
    let hl = String.length haystack and nl = String.length needle in
    let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
    nl = 0 || go 0
end

let rng () = Rng.create ~seed:77

(* Deck -------------------------------------------------------------------- *)

let test_fmt_si () =
  List.iter
    (fun (v, expected) -> Alcotest.(check string) (string_of_float v) expected (Deck.fmt_si v))
    [
      (4700., "4.7k");
      (1e-7, "100n");
      (1e6, "1Meg");
      (0.01, "10m");
      (1., "1");
      (2.2e-6, "2.2u");
      (3.3e9, "3.3G");
    ]

let test_deck_renders_cards () =
  let c = Circuit.create () in
  let a = Circuit.node c "a" and b = Circuit.node c "b" in
  Circuit.vsource c ~name:"V1" a Circuit.ground 1.;
  Circuit.resistor c ~name:"R1" a b 4700.;
  Circuit.capacitor c ~name:"C1" b Circuit.ground 1e-7;
  Circuit.egt c ~name:"T1" ~drain:a ~gate:b ~source:Circuit.ground ();
  let deck = Deck.to_string ~title:"test" c in
  List.iter
    (fun needle ->
      if not (String.length deck > 0 && Str_contains.contains deck needle) then
        Alcotest.failf "deck missing %S:\n%s" needle deck)
    [ "* test"; "V1 a 0 DC 1"; "R1 a b 4.7k"; "C1 b 0 100n"; "* T1"; ".end" ]

let test_component_summary () =
  let c = Circuit.create () in
  let a = Circuit.node c "a" in
  Circuit.resistor c a Circuit.ground 10.;
  Circuit.resistor c a Circuit.ground 20.;
  Circuit.capacitor c a Circuit.ground 1e-6;
  Alcotest.(check string) "summary" "2 R, 1 C" (Deck.component_summary c)

(* Netlist export ------------------------------------------------------------ *)

let test_crossbar_export_matches_eq1 () =
  let r = rng () in
  for trial = 1 to 10 do
    let inputs_n = 1 + Rng.int r 4 in
    let outputs = 1 + Rng.int r 3 in
    let cb = Crossbar.create r ~inputs:inputs_n ~outputs in
    let inputs = Array.init inputs_n (fun _ -> Rng.uniform r ~lo:(-1.) ~hi:1.) in
    if not (Netlist_export.dc_check cb ~inputs ~max_abs_error:1e-9) then
      Alcotest.failf "trial %d: netlist does not reproduce Eq. (1)" trial
  done

let test_crossbar_export_device_inventory () =
  let r = rng () in
  let cb = Crossbar.create r ~inputs:2 ~outputs:2 in
  let circ, outs = Netlist_export.crossbar cb ~inputs:[| 0.3; -0.5 |] in
  Alcotest.(check int) "two output nodes" 2 (Array.length outs);
  let _, resistors, _ = Circuit.device_counts circ in
  (* at most 2x2 weights + 2 bias + 2 dummy *)
  Alcotest.(check bool) "resistor count plausible" true (resistors >= 4 && resistors <= 8)

let test_filter_stage_export_cutoff () =
  let fl = Filter_layer.create (rng ()) Filter_layer.First ~features:2 in
  let circ, out = Netlist_export.filter_stage fl ~stage:0 ~channel:1 in
  let fc_spice = Ac.cutoff_hz circ ~probe:out in
  let fc_model = (Filter_layer.cutoff_hz fl).(1) in
  Alcotest.(check bool)
    (Printf.sprintf "cutoffs agree (%.2f vs %.2f Hz)" fc_spice fc_model)
    true
    (Float.abs (fc_spice -. fc_model) /. fc_model < 0.01)

let test_network_deck_nonempty () =
  let net = Network.create ~hidden:2 (rng ()) Network.Adapt ~inputs:1 ~classes:2 in
  let deck = Netlist_export.deck net in
  Alcotest.(check bool) "has crossbar sections" true (Str_contains.contains deck "crossbar");
  Alcotest.(check bool) "has filter sections" true (Str_contains.contains deck "filter stage");
  Alcotest.(check bool) "terminated" true (Str_contains.contains deck ".end")

(* Yield ----------------------------------------------------------------------- *)

let toy_dataset () =
  let raw = Pnc_data.Registry.load ~seed:5 ~n:40 "GPOVY" in
  let split = Pnc_data.Dataset.preprocess (Rng.create ~seed:6) raw in
  split.Pnc_data.Dataset.test

let test_yield_bounds_and_fields () =
  let net = Network.create ~hidden:2 (rng ()) Network.Ptpnc ~inputs:1 ~classes:2 in
  let model = Model.Circuit net in
  let r =
    Yield.estimate ~rng:(rng ()) ~spec:(Variation.uniform 0.1) ~threshold:0.5 ~draws:6 model
      (toy_dataset ())
  in
  Alcotest.(check int) "draws recorded" 6 r.Yield.draws;
  Alcotest.(check bool) "bounds ordered" true (r.Yield.worst <= r.Yield.mean_acc && r.Yield.mean_acc <= r.Yield.best);
  Alcotest.(check bool) "yield in [0,1]" true (r.Yield.yield >= 0. && r.Yield.yield <= 1.)

let test_yield_threshold_monotone () =
  let net = Network.create ~hidden:2 (rng ()) Network.Ptpnc ~inputs:1 ~classes:2 in
  let model = Model.Circuit net in
  let d = toy_dataset () in
  let y t =
    (Yield.estimate ~rng:(Rng.create ~seed:9) ~spec:(Variation.uniform 0.1) ~threshold:t
       ~draws:8 model d)
      .Yield.yield
  in
  Alcotest.(check bool) "lower threshold, higher yield" true (y 0.0 >= y 0.9);
  Alcotest.(check (float 0.)) "threshold 0 is 100%" 1. (y 0.0)

let test_yield_reference_single_instance () =
  let model = Model.Reference (Pnc_core.Elman.create (rng ()) ~inputs:1 ~classes:2) in
  let r =
    Yield.estimate ~rng:(rng ()) ~spec:(Variation.uniform 0.1) ~threshold:0.5 ~draws:10 model
      (toy_dataset ())
  in
  Alcotest.(check int) "one deterministic instance" 1 r.Yield.draws;
  Alcotest.(check (float 1e-9)) "no spread" 0. r.Yield.std_acc

let test_yield_sweep_levels () =
  let net = Network.create ~hidden:2 (rng ()) Network.Ptpnc ~inputs:1 ~classes:2 in
  let model = Model.Circuit net in
  let rows =
    Yield.sweep_levels ~rng:(rng ()) ~levels:[ 0.; 0.1; 0.3 ] ~threshold:0.5 ~draws:4 model
      (toy_dataset ())
  in
  Alcotest.(check int) "three rows" 3 (List.length rows);
  let level0 = List.assoc 0. rows in
  Alcotest.(check int) "level 0 single draw" 1 level0.Yield.draws

let test_yield_describe () =
  let r =
    {
      Yield.draws = 10;
      mean_acc = 0.8;
      std_acc = 0.05;
      worst = 0.7;
      best = 0.9;
      yield = 0.9;
      threshold = 0.75;
    }
  in
  Alcotest.(check bool) "mentions yield" true (Str_contains.contains (Yield.describe r) "90%")

(* Search ------------------------------------------------------------------------ *)

let test_random_genome_ranges () =
  let r = rng () in
  for _ = 1 to 100 do
    let g = Search.random_genome r in
    Alcotest.(check bool) "hidden range" true (g.Search.hidden >= 2 && g.Search.hidden <= 10)
  done

let test_describe_genome () =
  let g = { Search.hidden = 4; order = Filter_layer.Second; use_va = true; use_at = false } in
  Alcotest.(check string) "description" "hidden=4 SO-LF +VA" (Search.describe_genome g)

let test_pareto_front () =
  let mk acc dev =
    {
      Search.genome = { Search.hidden = dev; order = Filter_layer.First; use_va = false; use_at = false };
      val_acc = acc;
      test_acc = acc;
      devices = dev;
      power_mw = 0.1;
    }
  in
  let cands = [ mk 0.9 100; mk 0.8 50; mk 0.7 80 (* dominated *); mk 0.6 30 ] in
  let front = Search.pareto_front cands in
  Alcotest.(check int) "three survive" 3 (List.length front);
  Alcotest.(check bool) "dominated excluded" true
    (not (List.exists (fun c -> c.Search.devices = 80) front));
  (* sorted by devices *)
  let devs = List.map (fun c -> c.Search.devices) front in
  Alcotest.(check (list int)) "sorted" [ 30; 50; 100 ] devs

let test_search_smoke () =
  let cfg = Config.of_scale Config.Smoke in
  let cfg = { cfg with Config.dataset_n = Some 40 } in
  let candidates = Search.random_search cfg ~dataset:"GPOVY" ~seed:0 ~budget:2 in
  Alcotest.(check int) "anchor + budget" 3 (List.length candidates);
  (* sorted best-first *)
  let rec sorted = function
    | a :: (b :: _ as rest) -> a.Search.val_acc >= b.Search.val_acc && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "sorted" true (sorted candidates);
  List.iter
    (fun c -> Alcotest.(check bool) "devices positive" true (c.Search.devices > 0))
    candidates

let () =
  Alcotest.run "pnc_export_ext"
    [
      ( "deck",
        [
          Alcotest.test_case "fmt_si" `Quick test_fmt_si;
          Alcotest.test_case "cards" `Quick test_deck_renders_cards;
          Alcotest.test_case "summary" `Quick test_component_summary;
        ] );
      ( "netlist-export",
        [
          Alcotest.test_case "crossbar = Eq. 1" `Quick test_crossbar_export_matches_eq1;
          Alcotest.test_case "device inventory" `Quick test_crossbar_export_device_inventory;
          Alcotest.test_case "filter cutoff agrees" `Quick test_filter_stage_export_cutoff;
          Alcotest.test_case "network deck" `Quick test_network_deck_nonempty;
        ] );
      ( "yield",
        [
          Alcotest.test_case "bounds and fields" `Quick test_yield_bounds_and_fields;
          Alcotest.test_case "threshold monotone" `Quick test_yield_threshold_monotone;
          Alcotest.test_case "reference single instance" `Quick test_yield_reference_single_instance;
          Alcotest.test_case "sweep levels" `Quick test_yield_sweep_levels;
          Alcotest.test_case "describe" `Quick test_yield_describe;
        ] );
      ( "search",
        [
          Alcotest.test_case "genome ranges" `Quick test_random_genome_ranges;
          Alcotest.test_case "describe genome" `Quick test_describe_genome;
          Alcotest.test_case "pareto front" `Quick test_pareto_front;
          Alcotest.test_case "random search smoke" `Slow test_search_smoke;
        ] );
    ]
