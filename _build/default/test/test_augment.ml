(* Tests for the augmentation transforms and the policy tuner. *)

module Augment = Pnc_augment.Augment
module Tune = Pnc_augment.Tune
module Dataset = Pnc_data.Dataset
module Registry = Pnc_data.Registry
module Rng = Pnc_util.Rng
module Vec = Pnc_util.Vec
module Stats = Pnc_util.Stats

let rng () = Rng.create ~seed:99

let base_series () =
  Array.init 64 (fun i -> sin (2. *. Float.pi *. float_of_int i /. 32.))

let all_transforms =
  [
    Augment.Jitter { sigma = 0.05 };
    Augment.Magnitude_scale { sigma = 0.1 };
    Augment.Time_warp { knots = 4; strength = 0.3 };
    Augment.Random_crop { ratio = 0.8 };
    Augment.Freq_noise { sigma = 0.05 };
  ]

let test_length_preserved () =
  let s = base_series () in
  List.iter
    (fun t ->
      let out = Augment.apply_transform (rng ()) t s in
      Alcotest.(check int) (Augment.describe t) 64 (Array.length out))
    all_transforms

let test_transforms_change_signal () =
  let s = base_series () in
  List.iter
    (fun t ->
      let out = Augment.apply_transform (rng ()) t s in
      Alcotest.(check bool) (Augment.describe t ^ " changes signal") false
        (Vec.equal_eps ~eps:1e-12 s out))
    all_transforms

let test_input_not_mutated () =
  let s = base_series () in
  let copy = Array.copy s in
  List.iter (fun t -> ignore (Augment.apply_transform (rng ()) t s)) all_transforms;
  Alcotest.(check bool) "input untouched" true (Vec.equal_eps ~eps:0. copy s)

let test_deterministic_per_seed () =
  let s = base_series () in
  let a = Augment.apply_policy (Rng.create ~seed:5) Augment.default_policy s in
  let b = Augment.apply_policy (Rng.create ~seed:5) Augment.default_policy s in
  Alcotest.(check bool) "same seed same output" true (Vec.equal_eps ~eps:0. a b)

let test_jitter_statistics () =
  let s = Array.make 4096 0. in
  let out = Augment.apply_transform (rng ()) (Augment.Jitter { sigma = 0.2 }) s in
  Alcotest.(check bool) "mean near 0" true (Float.abs (Stats.mean out) < 0.02);
  Alcotest.(check bool) "std near sigma" true (Float.abs (Stats.std out -. 0.2) < 0.02)

let test_magnitude_scale_is_uniform_gain () =
  let s = base_series () in
  let out = Augment.apply_transform (rng ()) (Augment.Magnitude_scale { sigma = 0.2 }) s in
  (* out = k * s for a single k: check ratio constancy where s is not ~0 *)
  let k = out.(1) /. s.(1) in
  Array.iteri
    (fun i x ->
      if Float.abs s.(i) > 0.1 then
        Alcotest.(check (float 1e-9)) "constant gain" k (x /. s.(i)))
    out

let test_warp_path_monotone () =
  let r = rng () in
  for _ = 1 to 50 do
    let p = Augment.warp_path r ~knots:4 ~strength:0.4 64 in
    Alcotest.(check (float 1e-9)) "starts at 0" 0. p.(0);
    Alcotest.(check (float 1e-6)) "ends at n-1" 63. p.(63);
    for i = 1 to 63 do
      if p.(i) <= p.(i - 1) then Alcotest.failf "not strictly increasing at %d" i
    done
  done

let test_time_warp_preserves_range () =
  let s = base_series () in
  let out = Augment.apply_transform (rng ()) (Augment.Time_warp { knots = 4; strength = 0.4 }) s in
  (* Interpolated values cannot exceed the original range. *)
  Alcotest.(check bool) "within range" true
    (Array.for_all (fun x -> x >= Vec.min s -. 1e-9 && x <= Vec.max s +. 1e-9) out)

let test_crop_within_range () =
  let s = base_series () in
  let out = Augment.apply_transform (rng ()) (Augment.Random_crop { ratio = 0.7 }) s in
  Alcotest.(check int) "length restored" 64 (Array.length out);
  Alcotest.(check bool) "within range" true
    (Array.for_all (fun x -> x >= Vec.min s -. 1e-9 && x <= Vec.max s +. 1e-9) out)

let test_crop_full_ratio_identity () =
  let s = base_series () in
  let out = Augment.apply_transform (rng ()) (Augment.Random_crop { ratio = 1.0 }) s in
  Alcotest.(check bool) "ratio 1 is identity" true (Vec.equal_eps ~eps:0. s out)

let test_freq_noise_output_real_and_close () =
  let s = base_series () in
  let out = Augment.apply_transform (rng ()) (Augment.Freq_noise { sigma = 0.05 }) s in
  Array.iter (fun x -> if Float.is_nan x then Alcotest.fail "NaN") out;
  (* small sigma -> bounded deviation *)
  let dev = Vec.norm2 (Vec.sub out s) /. Vec.norm2 s in
  Alcotest.(check bool) (Printf.sprintf "relative deviation %.3f bounded" dev) true (dev < 0.8)

let test_freq_noise_preserves_mean () =
  (* DC bin untouched: the mean survives exactly. *)
  let s = Array.map (fun x -> x +. 0.7) (base_series ()) in
  let out = Augment.apply_transform (rng ()) (Augment.Freq_noise { sigma = 0.1 }) s in
  Alcotest.(check (float 1e-9)) "mean preserved" (Stats.mean s) (Stats.mean out)

let test_policy_prob_zero_is_identity () =
  let s = base_series () in
  let p = { Augment.default_policy with prob = 0. } in
  let out = Augment.apply_policy (rng ()) p s in
  Alcotest.(check bool) "identity" true (Vec.equal_eps ~eps:0. s out)

let test_augment_dataset_counts () =
  let d = Registry.load ~seed:1 ~n:30 "CBF" in
  let aug = Augment.augment_dataset (rng ()) Augment.default_policy ~copies:2 d in
  Alcotest.(check int) "original + 2 copies" 90 (Dataset.n_samples aug);
  (* labels replicated in order *)
  Alcotest.(check int) "label of first copy" d.Pnc_data.Dataset.y.(0) aug.Pnc_data.Dataset.y.(30)

let test_perturb_dataset_changes_everything () =
  let d = Registry.load ~seed:1 ~n:20 "PowerCons" in
  let p = Augment.perturb_dataset (rng ()) Augment.default_policy d in
  Alcotest.(check int) "same size" (Dataset.n_samples d) (Dataset.n_samples p);
  Array.iteri
    (fun i s ->
      if Vec.equal_eps ~eps:0. s p.Pnc_data.Dataset.x.(i) then
        Alcotest.failf "series %d unchanged by perturbation" i)
    d.Pnc_data.Dataset.x

(* Extended (tsaug) transforms ------------------------------------------------ *)

let test_drift_anchored_start () =
  let s = base_series () in
  let out = Augment.apply_transform (rng ()) (Augment.Drift { max_drift = 0.5; knots = 3 }) s in
  Alcotest.(check int) "length" 64 (Array.length out);
  Alcotest.(check (float 1e-9)) "first sample anchored" s.(0) out.(0);
  Alcotest.(check bool) "wanders later" false (Vec.equal_eps ~eps:1e-9 s out)

let test_drift_bounded () =
  let s = base_series () in
  let out = Augment.apply_transform (rng ()) (Augment.Drift { max_drift = 0.3; knots = 4 }) s in
  Array.iteri
    (fun i x ->
      if Float.abs (x -. s.(i)) > 0.3 +. 1e-9 then
        Alcotest.failf "drift exceeds bound at %d: %f" i (x -. s.(i)))
    out

let test_dropout_zero () =
  let s = Array.make 512 1. in
  let out = Augment.apply_transform (rng ()) (Augment.Dropout { ratio = 0.3; fill = `Zero }) s in
  let zeros = Array.fold_left (fun acc x -> if x = 0. then acc + 1 else acc) 0 out in
  Alcotest.(check bool) (Printf.sprintf "~30%% dropped (%d/512)" zeros) true
    (zeros > 100 && zeros < 220);
  Array.iter (fun x -> if x <> 0. && x <> 1. then Alcotest.fail "unexpected value") out

let test_dropout_hold () =
  let s = Array.init 256 float_of_int in
  let out = Augment.apply_transform (rng ()) (Augment.Dropout { ratio = 0.4; fill = `Hold }) s in
  (* Held samples repeat an earlier value: the output is non-decreasing
     for a strictly increasing input. *)
  for i = 1 to 255 do
    if out.(i) < out.(i - 1) -. 1e-12 then Alcotest.failf "hold broke monotonicity at %d" i
  done

let test_quantize_levels () =
  let s = base_series () in
  let out = Augment.apply_transform (rng ()) (Augment.Quantize { levels = 5 }) s in
  let module FS = Set.Make (Float) in
  let distinct = FS.cardinal (FS.of_list (Array.to_list out)) in
  Alcotest.(check bool) (Printf.sprintf "at most 5 levels (%d)" distinct) true (distinct <= 5);
  Alcotest.(check (float 1e-9)) "range preserved lo" (Vec.min s) (Vec.min out);
  Alcotest.(check (float 1e-9)) "range preserved hi" (Vec.max s) (Vec.max out)

let test_quantize_idempotent () =
  let s = base_series () in
  let t = Augment.Quantize { levels = 7 } in
  let once = Augment.apply_transform (rng ()) t s in
  let twice = Augment.apply_transform (rng ()) t once in
  Alcotest.(check bool) "idempotent" true (Vec.equal_eps ~eps:1e-9 once twice)

(* Tune ---------------------------------------------------------------------- *)

let test_tune_picks_argmax () =
  (* Score = negative jitter sigma: the search must find a candidate
     with small jitter among its draws. *)
  let eval (p : Augment.policy) =
    match p.transforms with
    | Augment.Jitter { sigma } :: _ -> -.sigma
    | _ -> -1000.
  in
  let c = Tune.search (rng ()) ~budget:50 ~eval in
  Alcotest.(check bool) "found low jitter" true (c.Tune.score > -0.03)

let test_tune_includes_default () =
  (* With budget 0 only the default policy is evaluated. *)
  let c = Tune.search (rng ()) ~budget:0 ~eval:(fun _ -> 42.) in
  Alcotest.(check (float 0.)) "default evaluated" 42. c.Tune.score

let test_random_policy_ranges () =
  let r = rng () in
  for _ = 1 to 100 do
    let p = Tune.random_policy r in
    Alcotest.(check bool) "prob in range" true (p.Augment.prob >= 0.3 && p.Augment.prob <= 0.8);
    List.iter
      (fun t ->
        match t with
        | Augment.Jitter { sigma } ->
            Alcotest.(check bool) "jitter range" true (sigma >= 0.01 && sigma <= 0.1)
        | Augment.Random_crop { ratio } ->
            Alcotest.(check bool) "crop range" true (ratio >= 0.7 && ratio <= 0.95)
        | Augment.Time_warp { knots; strength } ->
            Alcotest.(check bool) "warp range" true
              (knots >= 2 && knots <= 6 && strength >= 0.1 && strength <= 0.5)
        | Augment.Magnitude_scale { sigma } ->
            Alcotest.(check bool) "scale range" true (sigma >= 0.05 && sigma <= 0.2)
        | Augment.Freq_noise { sigma } ->
            Alcotest.(check bool) "freq range" true (sigma >= 0.01 && sigma <= 0.1)
        | Augment.Drift _ | Augment.Dropout _ | Augment.Quantize _ ->
            Alcotest.fail "tuner draws only the paper's five transforms")
      p.Augment.transforms
  done

let prop_augment_dataset_labels_preserved =
  QCheck.Test.make ~count:30 ~name:"augment_dataset preserves per-class counts x(copies+1)"
    QCheck.(pair (int_range 0 1000) (int_range 0 2))
    (fun (seed, copies) ->
      let d = Registry.load ~seed ~n:24 "CBF" in
      let aug =
        Augment.augment_dataset (Rng.create ~seed:(seed + 1)) Augment.default_policy ~copies d
      in
      let scale = copies + 1 in
      Array.for_all2
        (fun orig augd -> augd = scale * orig)
        (Dataset.class_counts d) (Dataset.class_counts aug))

let prop_perturb_deterministic =
  QCheck.Test.make ~count:30 ~name:"perturb_dataset deterministic per seed"
    QCheck.(int_range 0 1000)
    (fun seed ->
      let d = Registry.load ~seed ~n:10 "Slope" in
      let p1 = Augment.perturb_dataset (Rng.create ~seed:7) Augment.default_policy d in
      let p2 = Augment.perturb_dataset (Rng.create ~seed:7) Augment.default_policy d in
      Array.for_all2 (Vec.equal_eps ~eps:0.) p1.Pnc_data.Dataset.x p2.Pnc_data.Dataset.x)

let prop_policy_length_preserving =
  QCheck.Test.make ~count:100 ~name:"apply_policy preserves length"
    QCheck.(pair (int_range 0 10_000) (int_range 8 128))
    (fun (seed, n) ->
      let r = Rng.create ~seed in
      let s = Array.init n (fun i -> cos (0.3 *. float_of_int i)) in
      let out = Augment.apply_policy r (Tune.random_policy r) s in
      Array.length out = n && Array.for_all Float.is_finite out)

let () =
  Alcotest.run "pnc_augment"
    [
      ( "transforms",
        [
          Alcotest.test_case "length preserved" `Quick test_length_preserved;
          Alcotest.test_case "transforms change signal" `Quick test_transforms_change_signal;
          Alcotest.test_case "input not mutated" `Quick test_input_not_mutated;
          Alcotest.test_case "deterministic per seed" `Quick test_deterministic_per_seed;
          Alcotest.test_case "jitter statistics" `Quick test_jitter_statistics;
          Alcotest.test_case "magnitude scale uniform gain" `Quick test_magnitude_scale_is_uniform_gain;
          Alcotest.test_case "warp path monotone" `Quick test_warp_path_monotone;
          Alcotest.test_case "time warp range" `Quick test_time_warp_preserves_range;
          Alcotest.test_case "crop range" `Quick test_crop_within_range;
          Alcotest.test_case "crop ratio 1 identity" `Quick test_crop_full_ratio_identity;
          Alcotest.test_case "freq noise sane" `Quick test_freq_noise_output_real_and_close;
          Alcotest.test_case "freq noise keeps mean" `Quick test_freq_noise_preserves_mean;
        ] );
      ( "policies",
        [
          Alcotest.test_case "prob 0 identity" `Quick test_policy_prob_zero_is_identity;
          Alcotest.test_case "augment_dataset counts" `Quick test_augment_dataset_counts;
          Alcotest.test_case "perturb changes all series" `Quick test_perturb_dataset_changes_everything;
        ] );
      ( "extended-transforms",
        [
          Alcotest.test_case "drift anchored" `Quick test_drift_anchored_start;
          Alcotest.test_case "drift bounded" `Quick test_drift_bounded;
          Alcotest.test_case "dropout zero" `Quick test_dropout_zero;
          Alcotest.test_case "dropout hold" `Quick test_dropout_hold;
          Alcotest.test_case "quantize levels" `Quick test_quantize_levels;
          Alcotest.test_case "quantize idempotent" `Quick test_quantize_idempotent;
        ] );
      ( "tune",
        [
          Alcotest.test_case "argmax search" `Quick test_tune_picks_argmax;
          Alcotest.test_case "default included" `Quick test_tune_includes_default;
          Alcotest.test_case "random policy ranges" `Quick test_random_policy_ranges;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_policy_length_preserving;
            prop_augment_dataset_labels_preserved;
            prop_perturb_deterministic;
          ] );
    ]
