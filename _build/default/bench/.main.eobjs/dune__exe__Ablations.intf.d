bench/ablations.mli:
