bench/main.ml: Analyze Bechamel Benchmark Hashtbl Instance List Measure Pnc_autodiff Pnc_core Pnc_data Pnc_exp Pnc_optim Pnc_util Printf Staged Test Time Toolkit
