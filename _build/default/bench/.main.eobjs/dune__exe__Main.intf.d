bench/main.mli:
