(* Ablation benches for the design choices DESIGN.md §5 calls out.

   Sections:
   A. mu-prior ablation — does sampling the coupling factor
      µ ~ U[1, 1.3] during training help when the printed circuit
      actually exhibits coupling?
   B. read-out ablation — integrated (time-averaged) class scores vs
      reading the final instant only.
   C. learned filter placement — where do the trained cutoffs land
      relative to the dataset's spectral content?
   D. conductance discretization ladder — how many ink levels the
      trained crossbars need.
   E. component-family sensitivity — which family drives the loss
      under variation.

   Run with: dune exec bench/ablations.exe
   (uses a reduced budget; ADAPT_PNC_SCALE is not consulted here). *)

module T = Pnc_tensor.Tensor
module Var = Pnc_autodiff.Var
module Rng = Pnc_util.Rng
module Table = Pnc_util.Table
module Dataset = Pnc_data.Dataset
module Registry = Pnc_data.Registry
module Network = Pnc_core.Network
module Model = Pnc_core.Model
module Train = Pnc_core.Train
module Variation = Pnc_core.Variation
module Optimizer = Pnc_optim.Optimizer
module Spectrum = Pnc_signal.Spectrum

let datasets = [ "CBF"; "PowerCons"; "GPMVF" ]
let budget = { Train.fast_config with Train.max_epochs = 180; patience = 12 }

let load name seed =
  let raw = Registry.load ~seed ~n:160 name in
  (Dataset.preprocess (Rng.create ~seed:(seed + 1)) raw, raw.Dataset.n_classes)

(* A. mu-prior ablation ----------------------------------------------------- *)

(* Train with the given variation spec but control whether mu is sampled
   by toggling the draw's determinism: a spec with level 0 and v0 0
   makes mu_for return ones. We emulate "no mu prior" by training with
   Variation.none (so every draw is nominal incl. mu = 1) and "with
   prior" by the standard VA config; both are then evaluated with mu
   sampled (the physical truth) plus 10% components. *)
let mu_ablation () =
  print_endline "A. mu-prior ablation (evaluated with mu in [1,1.3] + 10% components)";
  let t = Table.create ~header:[ "Dataset"; "trained mu=1 fixed"; "trained mu sampled" ] in
  List.iter
    (fun name ->
      let split, classes = load name 0 in
      let train_with variation mc =
        let net =
          Network.create ~hidden:(min 8 (2 * classes)) (Rng.create ~seed:7) Network.Adapt
            ~inputs:1 ~classes
        in
        let model = Model.Circuit net in
        let cfg = { budget with Train.variation; mc_samples = mc } in
        let _ = Train.train ~rng:(Rng.create ~seed:8) cfg model split in
        model
      in
      let fixed = train_with Variation.none 1 in
      let sampled = train_with (Variation.uniform 0.1) 2 in
      let eval model =
        Train.accuracy_under_variation ~rng:(Rng.create ~seed:9)
          ~spec:(Variation.uniform 0.1) ~draws:8 model split.Dataset.test
      in
      Table.add_row t
        [ name; Printf.sprintf "%.3f" (eval fixed); Printf.sprintf "%.3f" (eval sampled) ])
    datasets;
  Table.print t;
  print_newline ()

(* B. read-out ablation ------------------------------------------------------- *)

let train_with_readout ~readout split ~classes =
  let net =
    Network.create ~hidden:(min 8 (2 * classes)) (Rng.create ~seed:17) Network.Adapt ~inputs:1
      ~classes
  in
  let x, y = Train.to_xy split.Dataset.train in
  let params = Network.params net in
  let opt = Optimizer.adamw ~params () in
  let sched = Pnc_optim.Scheduler.plateau ~patience:12 ~init_lr:0.05 () in
  let xv, yv = Train.to_xy split.Dataset.valid in
  (try
     for _ = 1 to 180 do
       Optimizer.zero_grads opt;
       let logits = Network.forward_readout ~readout ~draw:Variation.deterministic net x in
       Var.backward (Pnc_autodiff.Loss.softmax_cross_entropy ~logits ~labels:y);
       Optimizer.clip_grad_norm opt ~max_norm:5.;
       Optimizer.step opt ~lr:(Pnc_optim.Scheduler.lr sched);
       Network.clamp net;
       let vl =
         Network.forward_readout ~readout ~draw:Variation.deterministic net xv |> fun l ->
         T.get_scalar (Var.value (Pnc_autodiff.Loss.softmax_cross_entropy ~logits:l ~labels:yv))
       in
       match Pnc_optim.Scheduler.observe sched vl with
       | `Stop -> raise Exit
       | `Continue -> ()
     done
   with Exit -> ());
  net

let readout_ablation () =
  print_endline "B. read-out ablation (clean test accuracy)";
  let t = Table.create ~header:[ "Dataset"; "last-step read-out"; "integrated read-out" ] in
  List.iter
    (fun name ->
      let split, classes = load name 0 in
      let eval readout =
        let net = train_with_readout ~readout split ~classes in
        let x, y = Train.to_xy split.Dataset.test in
        let pred =
          T.argmax_rows
            (Var.value (Network.forward_readout ~readout ~draw:Variation.deterministic net x))
        in
        Pnc_util.Stats.accuracy ~pred ~truth:y
      in
      Table.add_row t
        [
          name;
          Printf.sprintf "%.3f" (eval Network.Last_step);
          Printf.sprintf "%.3f" (eval Network.Integrated);
        ])
    datasets;
  Table.print t;
  print_newline ()

(* C. learned filter placement -------------------------------------------------- *)

let filter_placement () =
  print_endline "C. learned filter cutoffs vs dataset spectral roll-off";
  let t =
    Table.create ~header:[ "Dataset"; "signal 95% roll-off (Hz)"; "learned cutoffs L1 (Hz)" ]
  in
  List.iter
    (fun name ->
      let split, classes = load name 0 in
      let net =
        Network.create ~hidden:(min 8 (2 * classes)) (Rng.create ~seed:27) Network.Adapt
          ~inputs:1 ~classes
      in
      let model = Model.Circuit net in
      let _ = Train.train ~rng:(Rng.create ~seed:28) budget model split in
      (* Spectral content at the physical rate 1/dt. *)
      let fs = 1. /. Pnc_core.Printed.dt in
      let rolloffs =
        Array.map
          (fun s -> Spectrum.rolloff_hz (Spectrum.periodogram ~fs s))
          split.Dataset.train.Dataset.x
      in
      let cutoffs =
        match Network.layers net with
        | (_, fl, _) :: _ -> Pnc_core.Filter_layer.cutoff_hz fl
        | [] -> [||]
      in
      Table.add_row t
        [
          name;
          Printf.sprintf "%.1f" (Pnc_util.Stats.mean rolloffs);
          String.concat ", "
            (Array.to_list (Array.map (Printf.sprintf "%.1f") cutoffs));
        ])
    datasets;
  Table.print t;
  print_newline ()

(* D. discretization ladder -------------------------------------------------------- *)

let discretization_ladder () =
  print_endline "D. conductance discretization (ink levels -> clean accuracy)";
  let levels = [ 2; 3; 4; 8; 16 ] in
  let t =
    Table.create
      ~header:("Dataset" :: "cont." :: List.map (fun l -> Printf.sprintf "%d lvl" l) levels)
  in
  List.iter
    (fun name ->
      let split, classes = load name 0 in
      let net =
        Network.create ~hidden:(min 8 (2 * classes)) (Rng.create ~seed:37) Network.Adapt
          ~inputs:1 ~classes
      in
      let model = Model.Circuit net in
      let _ = Train.train ~rng:(Rng.create ~seed:38) budget model split in
      let continuous = Train.accuracy model split.Dataset.test in
      let ladder =
        Pnc_core.Discretize.accuracy_ladder ~levels_list:levels net split.Dataset.test
      in
      Table.add_row t
        (name :: Printf.sprintf "%.3f" continuous
        :: List.map (fun (_, acc) -> Printf.sprintf "%.3f" acc) ladder))
    datasets;
  Table.print t;
  print_newline ()

(* E. sensitivity --------------------------------------------------------------------- *)

let sensitivity_summary () =
  print_endline "E. component-family sensitivity at ±15% (accuracy drop vs nominal)";
  let t =
    Table.create ~header:[ "Dataset"; "theta only"; "filter RC only"; "eta only"; "all" ]
  in
  List.iter
    (fun name ->
      let split, classes = load name 0 in
      let net =
        Network.create ~hidden:(min 8 (2 * classes)) (Rng.create ~seed:47) Network.Adapt
          ~inputs:1 ~classes
      in
      let model = Model.Circuit net in
      let _ = Train.train ~rng:(Rng.create ~seed:48) budget model split in
      let rows =
        Pnc_core.Sensitivity.analyze ~rng:(Rng.create ~seed:49) ~level:0.15 ~draws:8 net
          split.Dataset.test
      in
      let drop f =
        let r = List.find (fun r -> r.Pnc_core.Sensitivity.family = f) rows in
        Printf.sprintf "%+.3f" (-.r.Pnc_core.Sensitivity.drop)
      in
      Table.add_row t
        [
          name;
          drop Pnc_core.Sensitivity.Crossbar_conductances;
          drop Pnc_core.Sensitivity.Filter_rc;
          drop Pnc_core.Sensitivity.Activation_eta;
          drop Pnc_core.Sensitivity.All_families;
        ])
    datasets;
  Table.print t;
  print_newline ()

(* F. per-chip calibration --------------------------------------------------------- *)

let calibration_study () =
  print_endline
    "F. per-chip bias trimming at ±20% variation (3 manufactured instances per dataset)";
  let t =
    Table.create ~header:[ "Dataset"; "chip"; "before trim"; "after trim" ]
  in
  List.iter
    (fun name ->
      let split, classes = load name 0 in
      let net =
        Network.create ~hidden:(min 8 (2 * classes)) (Rng.create ~seed:57) Network.Adapt
          ~inputs:1 ~classes
      in
      let model = Model.Circuit net in
      let _ = Train.train ~rng:(Rng.create ~seed:58) budget model split in
      List.iter
        (fun chip_seed ->
          let chip = Pnc_core.Calibrate.chip ~seed:chip_seed (Variation.uniform 0.2) in
          let { Pnc_core.Calibrate.before; after } =
            Pnc_core.Calibrate.evaluate ~chip net ~calibration:split.Dataset.valid
              ~test:split.Dataset.test
          in
          Table.add_row t
            [ name; string_of_int chip_seed; Printf.sprintf "%.3f" before; Printf.sprintf "%.3f" after ])
        [ 1; 2; 3 ])
    datasets;
  Table.print t;
  print_newline ()

(* G. variation-model mismatch -------------------------------------------------------- *)

let variation_model_study () =
  print_endline
    "G. variation-model mismatch: trained on uniform ±10%, evaluated under the device-level GMM";
  let t =
    Table.create
      ~header:[ "Dataset"; "eval uniform ±10%"; "eval GMM (10%)"; "eval GMM (20%)" ]
  in
  List.iter
    (fun name ->
      let split, classes = load name 0 in
      let net =
        Network.create ~hidden:(min 8 (2 * classes)) (Rng.create ~seed:67) Network.Adapt
          ~inputs:1 ~classes
      in
      let model = Model.Circuit net in
      let _ =
        Train.train ~rng:(Rng.create ~seed:68)
          { budget with Train.variation = Variation.uniform 0.1; mc_samples = 2 }
          model split
      in
      let eval spec =
        Train.accuracy_under_variation ~rng:(Rng.create ~seed:69) ~spec ~draws:8 model
          split.Dataset.test
      in
      Table.add_row t
        [
          name;
          Printf.sprintf "%.3f" (eval (Variation.uniform 0.1));
          Printf.sprintf "%.3f" (eval (Variation.default_gmm 0.1));
          Printf.sprintf "%.3f" (eval (Variation.default_gmm 0.2));
        ])
    datasets;
  Table.print t;
  print_endline
    "(the GMM's minority wide mode stresses the design beyond the uniform training model)";
  print_newline ()

(* H. artifact microbenchmarks (Bechamel) -------------------------------------------- *)

let artifact_microbench () =
  let open Bechamel in
  let open Toolkit in
  print_endline "H. artifact regeneration microbenchmarks (Bechamel, monotonic clock)";
  let fig6 () = ignore (Pnc_exp.Experiments.fig6 ()) in
  let mu_extract () =
    ignore (Pnc_core.Coupling.extract ~r:1000. ~c:1e-5 ~r_load:33_000. ())
  in
  let filter_cutoff () =
    let circ = Pnc_spice.Circuit.create () in
    let vin = Pnc_spice.Circuit.node circ "in" and out = Pnc_spice.Circuit.node circ "out" in
    Pnc_spice.Circuit.vsource circ ~ac:1. vin Pnc_spice.Circuit.ground 0.;
    Pnc_spice.Circuit.resistor circ vin out 1000.;
    Pnc_spice.Circuit.capacitor circ out Pnc_spice.Circuit.ground 1e-5;
    ignore (Pnc_spice.Ac.cutoff_hz circ ~probe:out)
  in
  let ptanh_char () = ignore (Pnc_core.Ptanh_circuit.characterize ()) in
  let forward_pass =
    let rng = Rng.create ~seed:99 in
    let net = Network.create ~hidden:6 rng Network.Adapt ~inputs:1 ~classes:3 in
    let x = Pnc_tensor.Tensor.uniform rng ~rows:64 ~cols:64 ~lo:(-1.) ~hi:1. in
    fun () ->
      ignore (Network.forward ~draw:Pnc_core.Variation.deterministic net x)
  in
  let tests =
    Test.make_grouped ~name:"artifact" ~fmt:"%s %s"
      [
        Test.make ~name:"fig6-augmentations" (Staged.stage fig6);
        Test.make ~name:"mu-extraction" (Staged.stage mu_extract);
        Test.make ~name:"filter-ac-cutoff" (Staged.stage filter_cutoff);
        Test.make ~name:"ptanh-characterize" (Staged.stage ptanh_char);
        Test.make ~name:"adapt-forward-64x64" (Staged.stage forward_pass);
      ]
  in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:30 ~quota:(Time.second 1.0) ~kde:(Some 10) () in
  let raw = Benchmark.all cfg instances tests in
  let results = List.map (fun i -> Analyze.all ols i raw) instances in
  let merged = Analyze.merge ols instances results in
  let clock = Hashtbl.find merged (Measure.label Instance.monotonic_clock) in
  Hashtbl.iter
    (fun name ols_result ->
      match Analyze.OLS.estimates ols_result with
      | Some (est :: _) ->
          Printf.printf "  %-32s %s/run\n" name (Pnc_util.Timer.fmt_seconds (est *. 1e-9))
      | _ -> Printf.printf "  %-32s (no estimate)\n" name)
    clock;
  print_newline ()

let () =
  print_endline "ADAPT-pNC design-choice ablations\n";
  mu_ablation ();
  readout_ablation ();
  filter_placement ();
  discretization_ladder ();
  sensitivity_summary ();
  calibration_study ();
  variation_model_study ();
  artifact_microbench ();
  print_endline "done."
