# JOBS selects the worker count for the pool-parity test suite
# (exported as POOL_SIZE, read by test/test_pool.ml) and the
# evaluation pool of the bench harness (ADAPT_PNC_JOBS).
# Results are worker-count-invariant; only wall-clock changes.
JOBS ?= 4

check:
	dune build && POOL_SIZE=$(JOBS) dune runtest

bench:
	dune build bench/main.exe && ADAPT_PNC_JOBS=$(JOBS) dune exec bench/main.exe

.PHONY: check bench
