# JOBS selects the worker count for the pool-parity test suite
# (exported as POOL_SIZE, read by test/test_pool.ml) and the
# evaluation pool of the bench harness (ADAPT_PNC_JOBS).
# Results are worker-count-invariant; only wall-clock changes.
JOBS ?= 4

# BENCH_OUT streams every bench section (plus a final metrics
# snapshot) as JSON Lines alongside the human-readable report.
BENCH_OUT ?= docs/bench_pr9.json

# BATCH, when set, is exported as ADAPT_PNC_BATCH: the block size of
# the batched no-grad evaluation path (see docs/BATCHING.md). Results
# are bit-identical for every block size (the batch-parity suite
# enforces this); only memory traffic and wall-clock change.
BATCH ?=

# PRECISION, when set, is exported as ADAPT_PNC_PRECISION: the
# activation tier (exact|fast) resolved by entry points. Library
# defaults never read it, so the `Exact bit-parity suites must stay
# green under either setting (the CI matrix runs both).
PRECISION ?=

# STREAM=1 additionally runs the end-to-end streaming smoke after the
# test suite: the CLI streams a drifting, perturbed sensor stream under
# a sequential and a 4-worker pool with different batch chunking and
# scripts/stream_smoke.sh cmp's the accuracy-over-time tables
# byte-for-byte (see docs/STREAMING.md).
STREAM ?=

check:
	dune build && POOL_SIZE=$(JOBS) ADAPT_PNC_BATCH=$(BATCH) \
	  ADAPT_PNC_PRECISION=$(PRECISION) dune runtest
	@if [ "$(STREAM)" = "1" ]; then $(MAKE) stream-smoke; fi

bench:
	dune build bench/main.exe && \
	  ADAPT_PNC_JOBS=$(JOBS) BENCH_OUT=$(BENCH_OUT) dune exec bench/main.exe

# Refresh the golden-file references after an intentional change to
# the hardware cost model or the netlist exporter.
golden:
	UPDATE_GOLDEN=1 dune runtest test --force

# Source hygiene gate (no ocamlformat in the toolchain): rejects tabs
# and trailing whitespace in OCaml sources.
fmt-check:
	./scripts/fmt_check.sh

# End-to-end crash/resume demo through the CLI: a straight run and a
# crash-at-epoch-N + --resume run must produce byte-identical final
# checkpoints (see docs/CHECKPOINTS.md). RESUME_DEMO_OUT keeps the
# checkpoint files (CI uploads one as an artifact).
resume-demo:
	dune build bin/adapt_pnc.exe && \
	  ./scripts/resume_demo.sh $(RESUME_DEMO_OUT)

# Load generator for the serving daemon (docs/SERVING.md): hundreds of
# concurrent connections against an in-process daemon, every response
# parity-checked bit-for-bit against the offline engine, with a
# checkpoint hot-swap mid-run. SERVE_BENCH_OUT streams the summary
# (and metrics snapshot) as JSON Lines.
SERVE_BENCH_OUT ?= docs/bench_serve.json
serve-bench:
	dune build bench/serve_bench.exe && \
	  ADAPT_PNC_JOBS=$(JOBS) BENCH_OUT=$(SERVE_BENCH_OUT) \
	  dune exec bench/serve_bench.exe

# Sharded-grid crash demo: a 1-shard reference run vs SHARDS worker
# processes with one SIGKILLed mid-grid and resumed; the merged tables
# must be byte-identical (scripts/grid_demo.sh cmp's them, docs/GRID.md
# has the claim protocol). GRID_DEMO_OUT keeps the merged tables and
# the status JSONL (CI uploads them as artifacts).
SHARDS ?= 2
grid-smoke:
	dune build bin/adapt_pnc.exe && \
	  SHARDS=$(SHARDS) DATASETS="GPOVY PowerCons" \
	  ./scripts/grid_demo.sh $(GRID_DEMO_OUT)

# End-to-end smoke of the real `adapt_pnc serve` daemon over HTTP:
# train a smoke checkpoint, boot the daemon, drive health/inference/
# malformed-body requests with curl, SIGTERM, require a clean drain.
serve-smoke:
	dune build bin/adapt_pnc.exe && \
	  ./scripts/serve_smoke.sh $(SERVE_SMOKE_OUT)

# Streaming smoke through the real CLI: frozen + adapted passes over a
# drifting stream, sequential vs 4-worker pool, tables cmp'd
# byte-for-byte (docs/STREAMING.md). STREAM_SMOKE_OUT keeps the tables
# and the per-window telemetry JSONL (CI uploads them as artifacts).
stream-smoke:
	dune build bin/adapt_pnc.exe && \
	  ./scripts/stream_smoke.sh $(STREAM_SMOKE_OUT)

.PHONY: check bench golden fmt-check resume-demo serve-bench serve-smoke grid-smoke stream-smoke
