check:
	dune build && dune runtest

.PHONY: check
